//! `cs-chaos` — systematic fault injection against the CleanupSpec engine.
//!
//! ```sh
//! cs-chaos --matrix                         # fault-detection matrix, all 8 classes
//! cs-chaos --matrix --max-seeds 128         # widen the per-fault seed scan
//! cs-chaos --host-matrix                    # host-I/O fault recovery matrix
//! cs-chaos --list-faults                    # print the fault taxonomy
//! cs-chaos --fault drop-sefe-entry --seeds 32 --artifacts out/  # one-fault campaign
//! cs-chaos --seeds 64 --panic-at 7 --artifacts out/  # crash-isolation self-test
//! cs-chaos --replay 0x2a --fault double-undo # probe one seed verbosely
//! ```
//!
//! The matrix drives every [`FaultKind`] until it fires and is flagged by
//! at least one detector (the three cs-smith oracles, the forward-progress
//! watchdog, or the dual-run victim witness). `--host-matrix` turns the
//! same discipline on the harness itself: every host-I/O fault class
//! (ENOSPC, torn write, bit rot, read EIO, rename/fsync failure, crash
//! after write) is injected under the hardened artifact store and must be
//! retried, quarantined, degraded, or recovered on restart. Exit status:
//! 0 when the mode's expectation holds (matrix: all faults detected;
//! host matrix: all fault classes handled; fault campaign: at least one
//! seed flagged; clean campaign: no violations and — with `--panic-at` —
//! the planted panic isolated), 1 otherwise, 2 usage.

use cleanupspec_bench::chaos::{
    detection_matrix, probe_fault, render_matrix, run_chaos_campaign, ChaosOpts,
};
use cleanupspec_bench::cli::{parse_u64, CommonCli};
use cleanupspec_bench::{host_fault_matrix, render_host_matrix};
use cleanupspec_mem::fault::FaultKind;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    matrix: bool,
    host_matrix: bool,
    list_faults: bool,
    fault: Option<FaultKind>,
    seeds: u64,
    start: u64,
    max_seeds: u64,
    replay: Option<u64>,
    artifacts: Option<PathBuf>,
    shrink: bool,
    panic_at: Option<u64>,
    seed: u64,
    resume: Option<PathBuf>,
}

fn common_cli() -> CommonCli {
    CommonCli::new()
        .with_seeds()
        .with_start()
        .with_seed()
        .with_resume()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cs-chaos --matrix [--start N] [--max-seeds N]\n\
         \x20      cs-chaos --host-matrix [--seed N]\n\
         \x20      cs-chaos --list-faults\n\
         \x20      cs-chaos [--fault NAME] [--seeds N] [--start N] [--artifacts DIR]\n\
         \x20               [--shrink] [--panic-at SEED] [--resume DIR]\n\
         \x20      cs-chaos --replay SEED [--fault NAME]"
    );
    eprintln!("{}", common_cli().help());
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut common = common_cli();
    let mut args = Args {
        matrix: false,
        host_matrix: false,
        list_faults: false,
        fault: None,
        seeds: 32,
        start: 0,
        max_seeds: 256,
        replay: None,
        artifacts: None,
        shrink: false,
        panic_at: None,
        seed: 0,
        resume: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match common.accept(a, &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => {
                eprintln!("cs-chaos: {e}");
                return Err(usage());
            }
        }
        match a.as_str() {
            "--matrix" => args.matrix = true,
            "--host-matrix" => args.host_matrix = true,
            "--list-faults" => args.list_faults = true,
            "--shrink" => args.shrink = true,
            "--fault" => match it.next().and_then(|v| FaultKind::parse(v)) {
                Some(k) => args.fault = Some(k),
                None => {
                    eprintln!("unknown fault; try --list-faults");
                    return Err(usage());
                }
            },
            "--max-seeds" => match it.next().and_then(|v| parse_u64(v)) {
                Some(n) => args.max_seeds = n,
                None => return Err(usage()),
            },
            "--replay" => match it.next().and_then(|v| parse_u64(v)) {
                Some(n) => args.replay = Some(n),
                None => return Err(usage()),
            },
            "--panic-at" => match it.next().and_then(|v| parse_u64(v)) {
                Some(n) => args.panic_at = Some(n),
                None => return Err(usage()),
            },
            "--artifacts" => match it.next() {
                Some(p) => args.artifacts = Some(PathBuf::from(p)),
                None => return Err(usage()),
            },
            _ => return Err(usage()),
        }
    }
    args.seeds = common.seeds_or(32);
    args.start = common.start_or_default();
    args.seed = common.seed_or_default();
    args.resume = common.resume;
    Ok(args)
}

fn list_faults() -> ExitCode {
    println!("{:<30} description", "fault");
    for k in FaultKind::ALL {
        println!("{:<30} {}", k.name(), k.description());
    }
    ExitCode::SUCCESS
}

fn matrix(args: &Args) -> ExitCode {
    let rows = detection_matrix(args.start, args.max_seeds);
    print!("{}", render_matrix(&rows));
    if rows.iter().all(|r| r.detected()) {
        println!("every fault class is caught by at least one detector");
        ExitCode::SUCCESS
    } else {
        for r in rows.iter().filter(|r| !r.detected()) {
            eprintln!(
                "UNDETECTED: {} survived {} seed(s) — a real bug of this class would ship",
                r.kind.name(),
                r.seeds_scanned
            );
        }
        ExitCode::FAILURE
    }
}

fn replay(seed: u64, fault: Option<FaultKind>) -> ExitCode {
    match fault {
        Some(kind) => {
            let p = probe_fault(kind, seed);
            println!(
                "seed {seed:#x} fault {}: {} opportunit(ies), {} fire(s)",
                kind.name(),
                p.opportunities,
                p.fires
            );
            for v in &p.violations {
                println!("  {v}");
            }
            if p.detected() {
                println!("DETECTED by: {}", p.detectors.join(", "));
                ExitCode::SUCCESS
            } else if p.fires == 0 {
                println!("fault never fired on this seed (try another)");
                ExitCode::FAILURE
            } else {
                println!("NOT DETECTED");
                ExitCode::FAILURE
            }
        }
        None => match cleanupspec_bench::run_seed(seed) {
            cleanupspec_bench::SeedVerdict::Pass { squashes } => {
                println!("seed {seed:#x}: PASS ({squashes} squashes)");
                ExitCode::SUCCESS
            }
            cleanupspec_bench::SeedVerdict::Fail(vs) => {
                for v in &vs {
                    println!("FAIL {v}");
                }
                ExitCode::FAILURE
            }
        },
    }
}

/// Runs the host-I/O fault recovery matrix: every [`HostFaultKind`]
/// injected under the hardened store, each row proving retry /
/// quarantine / degradation / restart recovery with no journal
/// corruption or lost completed-task results.
///
/// [`HostFaultKind`]: cleanupspec_bench::HostFaultKind
fn host_matrix(seed: u64) -> ExitCode {
    let rows = host_fault_matrix(seed);
    print!("{}", render_host_matrix(&rows));
    if rows.iter().all(|r| r.handled) {
        println!("every host-I/O fault class is retried, quarantined, degraded, or recovered");
        ExitCode::SUCCESS
    } else {
        for r in rows.iter().filter(|r| !r.handled) {
            eprintln!(
                "UNHANDLED: {} — this host fault class can corrupt or lose campaign state",
                r.kind.name()
            );
        }
        ExitCode::FAILURE
    }
}

fn campaign(args: &Args) -> ExitCode {
    let opts = ChaosOpts {
        start: args.start,
        count: args.seeds,
        fault: args.fault,
        artifact_dir: args.artifacts.clone(),
        shrink: args.shrink,
        panic_at: args.panic_at,
        resume_dir: args.resume.clone(),
    };
    // Resume preflight: surface a journal/campaign mismatch as a clear
    // error before any seed runs, not as a mid-run warning.
    if let Some(dir) = &args.resume {
        match cleanupspec_bench::journal::check_resume(dir, &opts.journal_header()) {
            Ok(done) => eprintln!(
                "cs-chaos: resuming from {} ({done} completed seed(s) journaled)",
                dir.display()
            ),
            Err(e) => {
                eprintln!("cs-chaos: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let sum = run_chaos_campaign(&opts);
    // Resume accounting goes to stderr: stdout must stay byte-identical
    // to an uninterrupted campaign.
    if sum.resumed > 0 {
        eprintln!(
            "cs-chaos: {} of {} seed(s) replayed from the campaign journal",
            sum.resumed, sum.seeds
        );
    }
    println!(
        "cs-chaos: {} seed(s), {} pass, {} fail, {} panic(s){}",
        sum.seeds,
        sum.passes,
        sum.failures,
        sum.panics,
        args.fault
            .map(|k| format!(" [fault: {}]", k.name()))
            .unwrap_or_default()
    );
    for line in &sum.triage {
        println!("  {line}");
    }
    for a in &sum.artifacts {
        println!("  artifacts: {}", a.display());
    }
    if let Some(seed) = args.panic_at {
        // Isolation self-test: the planted panic must be *recorded*, and
        // the campaign must have run every seed after it.
        let isolated = sum.panics >= 1 && sum.seeds == args.seeds;
        let artifact_ok = args.artifacts.is_none() || !sum.artifacts.is_empty();
        if isolated && artifact_ok {
            println!("planted panic at seed {seed:#x} was isolated and recorded");
            return ExitCode::SUCCESS;
        }
        eprintln!("planted panic at seed {seed:#x} was NOT handled (isolation broken)");
        return ExitCode::FAILURE;
    }
    match args.fault {
        // A fault campaign succeeds when the oracles caught the fault
        // somewhere (witness-only faults are a matrix concern).
        Some(_) => {
            if sum.failures > 0 {
                ExitCode::SUCCESS
            } else {
                eprintln!("fault was never flagged — oracles may be toothless for it");
                ExitCode::FAILURE
            }
        }
        // A clean campaign succeeds when nothing failed or crashed.
        None => {
            if sum.failures == 0 && sum.panics == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(c) => return c,
    };
    if args.list_faults {
        return list_faults();
    }
    if args.matrix {
        return matrix(&args);
    }
    if args.host_matrix {
        return host_matrix(args.seed);
    }
    if let Some(seed) = args.replay {
        return replay(seed, args.fault);
    }
    campaign(&args)
}
