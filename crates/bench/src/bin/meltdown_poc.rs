//! Bonus experiment (beyond the paper's figures): a Meltdown-style
//! exception-based attack, built with the micro-ISA's deferred permission
//! check. The paper's Section 7.1 classifies exception-based attacks
//! (Meltdown, Foreshadow) as in-scope: CleanupSpec breaks their cache
//! transmission channel just as it does for Spectre.

use cleanupspec::modes::SecurityMode;
use cleanupspec_bench::fmt::table;
use cleanupspec_workloads::attacks::run_meltdown;

fn main() {
    let iters: usize = std::env::var("CLEANUPSPEC_ATTACK_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    println!("== Meltdown-style PoC (exception-based), {iters} iterations ==\n");
    let mut rows = Vec::new();
    for mode in [
        SecurityMode::NonSecure,
        SecurityMode::CleanupSpec,
        SecurityMode::NaiveInvalidate,
        SecurityMode::InvisiSpecInitial,
        SecurityMode::DelayOnMiss,
    ] {
        let r = run_meltdown(mode, iters, 0xde1);
        rows.push(vec![
            mode.name().to_string(),
            if r.leaked() { "LEAKED" } else { "safe" }.to_string(),
            format!("{:.1}", r.avg_latency[r.secret as usize]),
            if r.handler_ran { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!(
        "{}",
        table(
            &["mode", "secret", "secret reload (cyc)", "handler ran"],
            &rows
        )
    );
    println!("\nThe transient dependents of the faulting load execute in the");
    println!("window before the deferred permission check raises; only their");
    println!("cache side effects distinguish the modes — the exception itself");
    println!("is architecturally identical everywhere.");
}
