//! Figure 12 — Execution time of CleanupSpec normalized to the non-secure
//! baseline, per workload plus geometric mean (paper: 5.1% average, ~24%
//! for astar, ~11% for bzip2, ~0% for lbm/milc/libq).

use cleanupspec::modes::SecurityMode;
use cleanupspec_bench::fmt::{bar, geomean, slowdown_pct, table};
use cleanupspec_bench::runner::ExperimentConfig;
use cleanupspec_bench::svg::{maybe_write, Bar, BarChart};
use cleanupspec_bench::Sweep;

fn main() {
    let cfg = ExperimentConfig::default();
    println!("== Figure 12: CleanupSpec slowdown vs non-secure baseline ==");
    println!("   {} instructions per workload\n", cfg.insts);
    let sweep = Sweep::new()
        .modes(&[SecurityMode::NonSecure, SecurityMode::CleanupSpec])
        .config(&cfg)
        .run();
    sweep.warn_if_incomplete();
    let mut groups = sweep.modes.into_iter();
    let base = groups.next().expect("baseline mode").into_pairs();
    let cusp = groups.next().expect("cleanupspec mode").into_pairs();
    let mut rows = Vec::new();
    let mut factors = Vec::new();
    for ((w, b), (_, c)) in base.iter().zip(&cusp) {
        let f = c.slowdown_vs(b);
        factors.push(f);
        rows.push(vec![
            w.name.to_string(),
            format!("{:.3}", f),
            slowdown_pct(f),
        ]);
    }
    let g = geomean(&factors);
    rows.push(vec!["GEOMEAN".into(), format!("{g:.3}"), slowdown_pct(g)]);
    println!("{}", table(&["workload", "norm.time", "slowdown"], &rows));
    println!();
    for ((w, _), f) in base.iter().zip(&factors) {
        println!("{}", bar(w.name, *f, 1.3));
    }
    println!("{}", bar("GEOMEAN", g, 1.3));
    let chart = BarChart {
        title: "Figure 12: CleanupSpec execution time (normalized)".into(),
        y_label: "normalized execution time".into(),
        bars: base
            .iter()
            .zip(&factors)
            .map(|((w, _), f)| Bar {
                label: w.name.to_string(),
                segments: vec![*f],
            })
            .chain(std::iter::once(Bar {
                label: "GEOMEAN".into(),
                segments: vec![g],
            }))
            .collect(),
        segment_names: vec![],
        reference: Some(1.0),
    };
    if let Some(p) = maybe_write("fig12_slowdown", &chart.render()) {
        println!("\n[svg written to {}]", p.display());
    }
    println!("\npaper: 5.1% average slowdown; highest for high-mispredict");
    println!("workloads (astar ~24%, bzip2 ~11%), ~0% for lbm/milc/libq.");
}
