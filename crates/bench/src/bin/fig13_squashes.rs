//! Figure 13 — Squash frequency (squashes per kilo-instruction) under
//! CleanupSpec, per workload (paper: ~20 average, astar ~89, near zero for
//! lbm/milc/libq).

use cleanupspec::modes::SecurityMode;
use cleanupspec_bench::fmt::{bar, table};
use cleanupspec_bench::runner::ExperimentConfig;
use cleanupspec_bench::Sweep;

fn main() {
    let cfg = ExperimentConfig::default();
    println!("== Figure 13: squashes per kilo-instruction ==");
    println!("   {} instructions per workload\n", cfg.insts);
    let results = Sweep::new()
        .mode(SecurityMode::CleanupSpec)
        .config(&cfg)
        .run()
        .into_single_mode();
    let mut rows = Vec::new();
    let (mut sum, mut sum_insts) = (0.0, 0.0);
    for (w, r) in &results {
        let s = &r.cores[0];
        let pki = s.squash_pki();
        let insts_pki = s.squashed_insts as f64 * 1000.0 / s.committed_insts.max(1) as f64;
        sum += pki;
        sum_insts += insts_pki;
        rows.push(vec![
            w.name.to_string(),
            format!("{pki:.1}"),
            format!("{insts_pki:.1}"),
        ]);
    }
    let n = results.len() as f64;
    rows.push(vec![
        "AVG".into(),
        format!("{:.1}", sum / n),
        format!("{:.1}", sum_insts / n),
    ]);
    println!(
        "{}",
        table(
            &["workload", "squash-events/kinst", "squashed-insts/kinst"],
            &rows
        )
    );
    println!();
    for (w, r) in &results {
        let s = &r.cores[0];
        let ip = s.squashed_insts as f64 * 1000.0 / s.committed_insts.max(1) as f64;
        println!("{}", bar(w.name, ip, 90.0));
    }
    println!("{}", bar("AVG", sum_insts / n, 90.0));
    println!("\npaper: avg ~20 'squashes' per kilo-instruction, astar ~89,");
    println!("monotonically decreasing with branch prediction accuracy.");
    println!("(Both per-event and per-squashed-instruction rates are shown:");
    println!("the paper's astar value of 89 at a 12.4% misprediction rate is");
    println!("only consistent with counting squashed work, not squash events.)");
}
