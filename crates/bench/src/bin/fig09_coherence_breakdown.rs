//! Figure 9 — Breakup of loads by the coherence state of the line they
//! find, for the 23 multi-threaded sharing workloads on a 4-core system:
//! safe cache loads (local + remote-S), unsafe cache loads (remote-E/M,
//! the ones GetS-Safe must delay), and safe DRAM loads.
//! Paper: remote-E/M loads are ~2.4% of all loads on average.

use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::SimBuilder;
use cleanupspec_bench::exec::{run_indexed, ExecConfig};
use cleanupspec_bench::fmt::{pct, table};
use cleanupspec_workloads::sharing::SHARING_WORKLOADS;

fn main() {
    let insts: u64 = std::env::var("CLEANUPSPEC_INSTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120_000);
    let cores = 4;
    println!("== Figure 9: load breakup by line state (4-core, {insts} inst/core) ==\n");
    let outcome = run_indexed(SHARING_WORKLOADS.len(), &ExecConfig::default(), |i| {
        let w = &SHARING_WORKLOADS[i];
        let mut b = SimBuilder::new(SecurityMode::NonSecure);
        for p in w.build_all(cores, 0xF199) {
            b = b.program(p);
        }
        let mut sim = b.build();
        sim.run_with_warmup(insts / 4, insts);
        let m = &sim.report().mem;
        let total = (m.class_safe_cache + m.class_remote_em + m.class_dram).max(1) as f64;
        (
            w.name,
            m.class_remote_em as f64 / total,
            m.class_dram as f64 / total,
            m.class_safe_cache as f64 / total,
        )
    });
    assert!(outcome.is_complete(), "worker: {:?}", outcome.failures);
    let results: Vec<(&str, f64, f64, f64)> = outcome.slots.into_iter().flatten().collect();
    let mut rows = Vec::new();
    let mut sum_unsafe = 0.0;
    for (name, unsafe_frac, dram, safe) in &results {
        sum_unsafe += unsafe_frac;
        rows.push(vec![
            name.to_string(),
            pct(*unsafe_frac),
            pct(*dram),
            pct(*safe),
        ]);
    }
    let avg = sum_unsafe / results.len() as f64;
    rows.push(vec!["AVG".into(), pct(avg), String::new(), String::new()]);
    println!(
        "{}",
        table(
            &["workload", "unsafe(remote-E/M)", "safe DRAM", "safe cache"],
            &rows
        )
    );
    println!("\npaper: loads to remote-E/M lines are just 2.4% of all loads on");
    println!("average, so delaying their downgrade (GetS-Safe) is nearly free;");
    println!("96.8% of loads are to local or remote-S lines.");
}
