//! `cs-smith` — the differential fuzzer CLI.
//!
//! ```sh
//! cs-smith --seeds 500                    # fuzz seeds 0..500
//! cs-smith --seeds 200 --start 1000       # fuzz seeds 1000..1200
//! cs-smith --replay 0x2a                  # re-run one seed, verbose verdict
//! cs-smith --replay 42 --shrink           # minimize a failing seed to .s files
//! cs-smith --sabotage --seeds 64 --shrink # prove the oracles catch a planted bug
//! ```
//!
//! Each seed generates a random micro-ISA program (biased toward
//! mispredicted branches guarding loads, store-to-load forwarding across
//! squashes, flushes, aliasing, and cross-core sharing), runs it under
//! NonSecure / CleanupSpec / InvisiSpec (both) / NaiveInvalidate, and
//! checks the architectural-equivalence, cache-restoration, and
//! leakage-audit oracles against the in-order reference interpreter.
//! `--sabotage` swaps CleanupSpec for a deliberately broken undo
//! (`SkipRestore`) — the run *must* find violations, or the oracles are
//! toothless. Exit status: 0 clean (or sabotage caught), 1 violations
//! (or sabotage missed), 2 usage.

use cleanupspec_asm::disassemble;
use cleanupspec_bench::cli::{parse_u64, CommonCli};
use cleanupspec_bench::fuzz::{
    campaign_journal_header, run_campaign_resumable, run_plan, run_plan_sabotaged, shrink,
    SeedVerdict,
};
use cleanupspec_bench::journal::Journal;
use cleanupspec_bench::store::{shared_dir_store, ArtifactStore};
use cleanupspec_workloads::smith::{assemble_plan, plan, SmithPlan};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    seeds: u64,
    start: u64,
    replay: Option<u64>,
    shrink: bool,
    sabotage: bool,
    threads: usize,
    resume: Option<PathBuf>,
}

fn common_cli() -> CommonCli {
    CommonCli::new()
        .with_seeds()
        .with_start()
        .with_threads()
        .with_resume()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cs-smith [--seeds N] [--start N] [--replay SEED] \
         [--shrink] [--sabotage] [--threads N] [--resume DIR]"
    );
    eprintln!("{}", common_cli().help());
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut common = common_cli();
    let mut replay = None;
    let mut do_shrink = false;
    let mut sabotage = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match common.accept(a, &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => {
                eprintln!("cs-smith: {e}");
                return Err(usage());
            }
        }
        match a.as_str() {
            "--replay" => match it.next().and_then(|v| parse_u64(v)) {
                Some(n) => replay = Some(n),
                None => return Err(usage()),
            },
            "--shrink" => do_shrink = true,
            "--sabotage" => sabotage = true,
            _ => return Err(usage()),
        }
    }
    Ok(Args {
        seeds: common.seeds_or(500),
        start: common.start_or_default(),
        replay,
        shrink: do_shrink,
        sabotage,
        threads: common.threads_or_default(),
        resume: common.resume,
    })
}

/// Writes the plan's programs as replayable `.s` files in the working
/// directory and prints their paths.
fn export(p: &SmithPlan, tag: &str) {
    for (i, prog) in assemble_plan(p).iter().enumerate() {
        let path = format!("cs-smith-{tag}-{:#x}-core{i}.s", p.seed);
        let asm = format!(
            "; cs-smith seed {:#x} core {i}: {} plan ops, {} iterations\n{}",
            p.seed,
            p.ops.len(),
            p.iters,
            disassemble(prog)
        );
        match std::fs::write(&path, asm) {
            Ok(()) => println!("  wrote {path} ({} instructions)", prog.len()),
            Err(e) => eprintln!("  cannot write {path}: {e}"),
        }
    }
}

fn verdict_of(p: &SmithPlan, sabotage: bool) -> SeedVerdict {
    if sabotage {
        run_plan_sabotaged(p)
    } else {
        run_plan(p)
    }
}

/// Replays one seed verbosely; shrinks and exports on failure.
fn replay(seed: u64, sabotage: bool, do_shrink: bool) -> ExitCode {
    let p = plan(seed);
    let progs = assemble_plan(&p);
    println!(
        "seed {:#x}: {} plan ops, {} iters, {} core(s), {} instruction(s)",
        seed,
        p.ops.len(),
        p.iters,
        p.cores,
        progs.iter().map(|p| p.len()).sum::<usize>()
    );
    match verdict_of(&p, sabotage) {
        SeedVerdict::Pass { squashes } => {
            println!("PASS ({squashes} squashes observed)");
            ExitCode::SUCCESS
        }
        SeedVerdict::Fail(violations) => {
            for v in &violations {
                println!("FAIL {v}");
            }
            if do_shrink {
                let min = shrink(&p, |cand| !verdict_of(cand, sabotage).passed());
                let insts: usize = assemble_plan(&min).iter().map(|p| p.len()).sum();
                println!(
                    "shrunk to {} plan op(s), {} iter(s), {} core(s), {insts} instruction(s):",
                    min.ops.len(),
                    min.iters,
                    min.cores
                );
                for op in &min.ops {
                    println!("  {op:?}");
                }
                export(&min, if sabotage { "sabotage" } else { "fail" });
                if let SeedVerdict::Fail(vs) = verdict_of(&min, sabotage) {
                    println!("minimal repro still fails: {}", vs[0]);
                }
            }
            ExitCode::FAILURE
        }
    }
}

/// Fuzzes a seed range under the planted `SkipRestore` bug: success means
/// the oracles caught it on at least one seed.
fn sabotage_campaign(args: &Args) -> ExitCode {
    for seed in args.start..args.start + args.seeds {
        let p = plan(seed);
        if let SeedVerdict::Fail(violations) = run_plan_sabotaged(&p) {
            println!(
                "sabotage caught at seed {:#x} after {} seed(s): {}",
                seed,
                seed - args.start + 1,
                violations[0]
            );
            if args.shrink {
                let min = shrink(&p, |cand| !run_plan_sabotaged(cand).passed());
                let insts: usize = assemble_plan(&min).iter().map(|p| p.len()).sum();
                println!(
                    "shrunk to {} plan op(s), {} iter(s), {insts} instruction(s)",
                    min.ops.len(),
                    min.iters
                );
                export(&min, "sabotage");
            }
            return ExitCode::SUCCESS;
        }
    }
    eprintln!(
        "sabotaged undo survived {} seed(s) — oracles are toothless",
        args.seeds
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(c) => return c,
    };
    if args.resume.is_some() && (args.replay.is_some() || args.sabotage) {
        eprintln!("cs-smith: --resume applies to plain seed campaigns only");
        return usage();
    }
    if let Some(seed) = args.replay {
        return replay(seed, args.sabotage, args.shrink);
    }
    if args.sabotage {
        return sabotage_campaign(&args);
    }
    let header = campaign_journal_header(args.start, args.seeds);
    // Resume preflight: surface a journal/campaign mismatch as a clear
    // error before any fuzzing starts, not as a mid-run warning.
    if let Some(dir) = &args.resume {
        match cleanupspec_bench::journal::check_resume(dir, &header) {
            Ok(done) => eprintln!(
                "cs-smith: resuming from {} ({done} completed seed(s) journaled)",
                dir.display()
            ),
            Err(e) => {
                eprintln!("cs-smith: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let journal = args.resume.as_deref().and_then(|dir| {
        let store = shared_dir_store(dir) as Arc<dyn ArtifactStore>;
        match Journal::open(store, &header) {
            Ok(j) => Some(j),
            Err(e) => {
                eprintln!("cs-smith: running without a journal: {e}");
                None
            }
        }
    });
    let r = run_campaign_resumable(args.start, args.seeds, args.threads, journal.as_ref());
    // Resume accounting goes to stderr: stdout must stay byte-identical
    // to an uninterrupted campaign.
    if r.resumed > 0 {
        eprintln!(
            "cs-smith: {} of {} seed(s) replayed from the campaign journal",
            r.resumed, r.seeds
        );
    }
    println!(
        "cs-smith: {} seed(s) x {} scheme runs, {} squashes, {} violation(s), {} panic(s)",
        r.seeds,
        cleanupspec_bench::fuzz::FUZZ_MODES.len() + 1, // + determinism replay
        r.squashes,
        r.violations.len(),
        r.panics
    );
    if r.clean() {
        if r.squashes == 0 {
            eprintln!("warning: no squashes observed — campaign exercised nothing");
        }
        println!("all oracles held");
        ExitCode::SUCCESS
    } else {
        for v in r.violations.iter().take(20) {
            println!("FAIL {v}");
        }
        println!("replay with: cs-smith --replay <seed> --shrink");
        ExitCode::FAILURE
    }
}
