//! Figure 14 — Stall time per squash under CleanupSpec, decomposed into
//! the wait for inflight correct-path loads and the actual cleanup
//! operations (paper: ~25 cycles per squash on average, ~20 of which are
//! inflight wait and ~5 actual cleanup).
//!
//! Extended with differential CPI-stack attribution: each workload runs
//! under NonSecure and CleanupSpec with the same seed, and the two
//! top-down cycle stacks are diffed to show *where the slowdown goes* —
//! which stall buckets absorb the scheme's extra cycles.

use cleanupspec::modes::SecurityMode;
use cleanupspec_bench::attribution::{diff_stacks, top_overheads};
use cleanupspec_bench::fmt::table;
use cleanupspec_bench::runner::ExperimentConfig;
use cleanupspec_bench::svg::{maybe_write, Bar, BarChart};
use cleanupspec_bench::Sweep;

fn main() {
    let cfg = ExperimentConfig::default();
    println!("== Figure 14: stall cycles per squash (wait + cleanup) ==");
    println!("   {} instructions per workload\n", cfg.insts);
    let sweep = Sweep::new()
        .modes(&[SecurityMode::NonSecure, SecurityMode::CleanupSpec])
        .config(&cfg)
        .run();
    sweep.warn_if_incomplete();
    let mut groups = sweep.modes.into_iter();
    let baseline = groups.next().expect("baseline mode").into_pairs();
    let results = groups.next().expect("cleanupspec mode").into_pairs();
    let mut rows = Vec::new();
    let (mut sw, mut sc) = (0.0, 0.0);
    for (w, r) in &results {
        let (wait, cleanup) = r.cores[0].stall_per_squash();
        sw += wait;
        sc += cleanup;
        rows.push(vec![
            w.name.to_string(),
            format!("{wait:.1}"),
            format!("{cleanup:.1}"),
            format!("{:.1}", wait + cleanup),
        ]);
    }
    let n = results.len() as f64;
    rows.push(vec![
        "AVG".into(),
        format!("{:.1}", sw / n),
        format!("{:.1}", sc / n),
        format!("{:.1}", (sw + sc) / n),
    ]);
    println!(
        "{}",
        table(
            &["workload", "inflight-wait", "actual-cleanup", "total"],
            &rows
        )
    );
    let chart = BarChart {
        title: "Figure 14: stall time per squash".into(),
        y_label: "cycles per squash".into(),
        bars: results
            .iter()
            .map(|(w, r)| {
                let (wait, cleanup) = r.cores[0].stall_per_squash();
                Bar {
                    label: w.name.to_string(),
                    segments: vec![wait, cleanup],
                }
            })
            .collect(),
        segment_names: vec!["inflight-wait".into(), "actual-cleanup".into()],
        reference: None,
    };
    if let Some(p) = maybe_write("fig14_stall_breakdown", &chart.render()) {
        println!("\n[svg written to {}]", p.display());
    }

    // Where does the slowdown go? Per-workload top-3 stall buckets that
    // gained time (delta CPKI) under CleanupSpec vs the NonSecure run of
    // the same seed.
    println!("\n== Attribution: CPI-stack diff vs non-secure ==");
    let mut rows = Vec::new();
    for ((w, base), (_, secure)) in baseline.iter().zip(results.iter()) {
        let top = top_overheads(&diff_stacks(base, secure), 3);
        let causes = top
            .iter()
            .map(|d| format!("{} +{:.1}", d.cause.name(), d.delta_cpki))
            .collect::<Vec<_>>()
            .join(", ");
        rows.push(vec![
            w.name.to_string(),
            format!("{:.3}", secure.slowdown_vs(base)),
            if causes.is_empty() {
                "-".into()
            } else {
                causes
            },
        ]);
    }
    println!(
        "{}",
        table(
            &["workload", "slowdown", "top overheads (delta CPKI)"],
            &rows
        )
    );

    // Suite-wide view: every bucket whose share of time moved.
    let agg = |rs: &[(
        cleanupspec_workloads::spec::SpecWorkload,
        cleanupspec::sim::SimReport,
    )]| {
        let mut out = rs[0].1.clone();
        for (_, r) in &rs[1..] {
            out.cycles += r.cycles;
            for (i, c) in r.cores.iter().enumerate() {
                out.cores[i].committed_insts += c.committed_insts;
                out.cores[i].cpi_stack.merge(&c.cpi_stack);
            }
        }
        out
    };
    let deltas = diff_stacks(&agg(&baseline), &agg(&results));
    let rows: Vec<Vec<String>> = deltas
        .iter()
        .filter(|d| d.delta_cpki.abs() > 0.05)
        .map(|d| {
            vec![
                d.cause.name().to_string(),
                format!("{:.1}", d.base_cpki),
                format!("{:.1}", d.secure_cpki),
                format!("{:+.1}", d.delta_cpki),
            ]
        })
        .collect();
    println!("\nsuite-wide CPI stack (cycles per kilo-instruction):");
    println!(
        "{}",
        table(&["cause", "non-secure", "cleanupspec", "delta"], &rows)
    );
    let scheme: f64 = deltas
        .iter()
        .filter(|d| d.cause.is_scheme_overhead())
        .map(|d| d.delta_cpki.max(0.0))
        .sum();
    println!("scheme-overhead buckets add {scheme:.1} CPKI suite-wide");

    println!("\npaper: ~25 cycles total per squash on average; the wait for");
    println!("inflight correct-path loads dominates (~20 of ~25), with only");
    println!("~5 cycles of actual cleanup; lbm/milc need 20-25 cleanup cycles.");
}
