//! Figure 14 — Stall time per squash under CleanupSpec, decomposed into
//! the wait for inflight correct-path loads and the actual cleanup
//! operations (paper: ~25 cycles per squash on average, ~20 of which are
//! inflight wait and ~5 actual cleanup).

use cleanupspec::modes::SecurityMode;
use cleanupspec_bench::fmt::table;
use cleanupspec_bench::runner::{run_all_spec, ExperimentConfig};
use cleanupspec_bench::svg::{maybe_write, Bar, BarChart};

fn main() {
    let cfg = ExperimentConfig::default();
    println!("== Figure 14: stall cycles per squash (wait + cleanup) ==");
    println!("   {} instructions per workload\n", cfg.insts);
    let results = run_all_spec(SecurityMode::CleanupSpec, &cfg);
    let mut rows = Vec::new();
    let (mut sw, mut sc) = (0.0, 0.0);
    for (w, r) in &results {
        let (wait, cleanup) = r.cores[0].stall_per_squash();
        sw += wait;
        sc += cleanup;
        rows.push(vec![
            w.name.to_string(),
            format!("{wait:.1}"),
            format!("{cleanup:.1}"),
            format!("{:.1}", wait + cleanup),
        ]);
    }
    let n = results.len() as f64;
    rows.push(vec![
        "AVG".into(),
        format!("{:.1}", sw / n),
        format!("{:.1}", sc / n),
        format!("{:.1}", (sw + sc) / n),
    ]);
    println!(
        "{}",
        table(
            &["workload", "inflight-wait", "actual-cleanup", "total"],
            &rows
        )
    );
    let chart = BarChart {
        title: "Figure 14: stall time per squash".into(),
        y_label: "cycles per squash".into(),
        bars: results
            .iter()
            .map(|(w, r)| {
                let (wait, cleanup) = r.cores[0].stall_per_squash();
                Bar {
                    label: w.name.to_string(),
                    segments: vec![wait, cleanup],
                }
            })
            .collect(),
        segment_names: vec!["inflight-wait".into(), "actual-cleanup".into()],
        reference: None,
    };
    if let Some(p) = maybe_write("fig14_stall_breakdown", &chart.render()) {
        println!("\n[svg written to {}]", p.display());
    }
    println!("\npaper: ~25 cycles total per squash on average; the wait for");
    println!("inflight correct-path loads dominates (~20 of ~25), with only");
    println!("~5 cycles of actual cleanup; lbm/milc need 20-25 cleanup cycles.");
}
