//! Figure 4 — The motivation study: execution time (a) and network traffic
//! (b) of InvisiSpec normalized to the non-secure baseline, with the
//! traffic broken into regular / invisible-load / update-load messages.
//! Paper (initial estimates): ~67.5% slowdown and ~+51% traffic, roughly
//! half of the traffic being speculative + update loads.

use cleanupspec::modes::SecurityMode;
use cleanupspec_bench::fmt::{geomean, pct, slowdown_pct, table};
use cleanupspec_bench::runner::ExperimentConfig;
use cleanupspec_bench::Sweep;
use cleanupspec_mem::stats::MsgClass;

fn main() {
    let cfg = ExperimentConfig::default();
    println!("== Figure 4: InvisiSpec (initial) vs non-secure ==");
    println!("   {} instructions per workload\n", cfg.insts);
    let sweep = Sweep::new()
        .modes(&[SecurityMode::NonSecure, SecurityMode::InvisiSpecInitial])
        .config(&cfg)
        .run();
    sweep.warn_if_incomplete();
    let mut groups = sweep.modes.into_iter();
    let base = groups.next().expect("baseline mode").into_pairs();
    let invi = groups.next().expect("invisispec mode").into_pairs();
    let mut rows = Vec::new();
    let mut slow = Vec::new();
    let mut traf = Vec::new();
    for ((w, b), (_, i)) in base.iter().zip(&invi) {
        let f = i.slowdown_vs(b);
        let t = i.traffic_vs(b);
        slow.push(f);
        traf.push(t);
        rows.push(vec![
            w.name.to_string(),
            format!("{f:.2}"),
            format!("{t:.2}"),
            pct(i.traffic_share(MsgClass::SpecLoad)),
            pct(i.traffic_share(MsgClass::UpdateLoad)),
        ]);
    }
    let (gs, gt) = (geomean(&slow), geomean(&traf));
    rows.push(vec![
        "GEOMEAN".into(),
        format!("{gs:.2}"),
        format!("{gt:.2}"),
        String::new(),
        String::new(),
    ]);
    println!(
        "{}",
        table(
            &[
                "workload",
                "norm.time",
                "norm.traffic",
                "spec-load%",
                "update-load%"
            ],
            &rows
        )
    );
    println!(
        "\nInvisiSpec (initial estimate) slowdown: {}",
        slowdown_pct(gs)
    );
    println!(
        "network traffic vs baseline:            {}",
        slowdown_pct(gt)
    );
    println!("\npaper: 67.5% average slowdown, +51% network traffic; about");
    println!("half of all traffic is due to invisible + update loads.");
}
