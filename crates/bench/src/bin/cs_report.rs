//! `cs-report` — speculation-episode forensics.
//!
//! Reconstructs cleanup *episodes* (squash → cleanup → resume) and their
//! undo-coverage ledger from an event stream, then renders a forensics
//! report: the ledger verdict, aggregate episode shape, and the top-K
//! slowest episodes with their event timelines.
//!
//! ```sh
//! cs-report events.jsonl                       # replay a cs-trace capture
//! cs-report spectre_v1                         # run the workload directly
//! cs-report gcc --compare --top 3              # episode shape across schemes
//! cs-report spectre_v1 --fault skip-victim-restore --expect leaky
//! cs-report spectre_v1 --json --out report.json
//! ```
//!
//! The positional argument is a `.jsonl` trace written by
//! `cs-trace --jsonl` (the header must declare schema `cs-events-v2`), or
//! anything `cs-trace` accepts as a target. The report body is fully
//! deterministic: replaying a trace of a run produces byte-identical
//! output to running the workload directly, and `--threads` never changes
//! a byte.

use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::SimBuilder;
use cleanupspec_bench::cli::{CommonCli, DEFAULT_SEED};
use cleanupspec_bench::exec::{run_indexed, ExecConfig};
use cleanupspec_bench::fuzz::fuzz_mem_config;
use cleanupspec_bench::target::{resolve_programs, TARGET_HELP};
use cleanupspec_core::system::RunLimits;
use cleanupspec_mem::fault::{FaultKind, FaultPlan};
use cleanupspec_obs::episode::{EpisodeBuilder, EpisodeRecord, EpisodeReport};
use cleanupspec_obs::{
    event_from_json, EventSink, JsonValue, JsonWriter, Shared, SimEvent, EVENT_SCHEMA_VERSION,
};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::process::ExitCode;

/// Modes compared by `--compare`: the paper's scheme against the
/// strongest related defence and the insecure baseline.
const COMPARE_MODES: [SecurityMode; 3] = [
    SecurityMode::CleanupSpec,
    SecurityMode::InvisiSpecRevised,
    SecurityMode::NonSecure,
];

/// What the caller asserts about the primary run's ledger.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// Exit nonzero unless the ledger balanced (CI clean-run gate).
    Clean,
    /// Exit nonzero unless at least one leak was found (CI fault gate).
    Leaky,
}

struct Args {
    target: String,
    mode: SecurityMode,
    insts: u64,
    seed: u64,
    top: usize,
    json: bool,
    out: Option<String>,
    compare: bool,
    fault: Option<FaultKind>,
    expect: Option<Expect>,
    squeeze: bool,
    threads: usize,
}

fn common_cli() -> CommonCli {
    CommonCli::new().with_insts().with_seed().with_threads()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cs-report [--mode <name>] [--insts N] [--seed N] [--threads N] \
         [--top K] [--json] [--out FILE] [--compare] [--fault KIND] [--squeeze] \
         [--expect clean|leaky] <trace.jsonl | file.s | workload>"
    );
    eprintln!("{}", common_cli().help());
    eprintln!(
        "modes: {}",
        SecurityMode::ALL
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    eprintln!("{TARGET_HELP}");
    eprintln!(
        "faults: {}",
        FaultKind::ALL
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::FAILURE
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut common = common_cli();
    let mut args = Args {
        target: String::new(),
        mode: SecurityMode::CleanupSpec,
        insts: 50_000,
        seed: DEFAULT_SEED,
        top: 5,
        json: false,
        out: None,
        compare: false,
        fault: None,
        expect: None,
        squeeze: false,
        threads: 0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match common.accept(a, &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => {
                eprintln!("cs-report: {e}");
                return Err(usage());
            }
        }
        match a.as_str() {
            "--mode" => match it.next().and_then(|m| SecurityMode::from_name(m)) {
                Some(m) => args.mode = m,
                None => return Err(usage()),
            },
            "--top" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => args.top = n,
                None => return Err(usage()),
            },
            "--json" => args.json = true,
            "--compare" => args.compare = true,
            "--squeeze" => args.squeeze = true,
            "--out" => match it.next() {
                Some(f) => args.out = Some(f.clone()),
                None => return Err(usage()),
            },
            "--fault" => match it.next().and_then(|k| FaultKind::parse(k)) {
                Some(k) => args.fault = Some(k),
                None => return Err(usage()),
            },
            "--expect" => match it.next().map(String::as_str) {
                Some("clean") => args.expect = Some(Expect::Clean),
                Some("leaky") => args.expect = Some(Expect::Leaky),
                _ => return Err(usage()),
            },
            f if !f.starts_with('-') && args.target.is_empty() => {
                args.target = f.to_string();
            }
            _ => return Err(usage()),
        }
    }
    if args.target.is_empty() {
        return Err(usage());
    }
    args.insts = common.insts.unwrap_or(args.insts);
    args.seed = common.seed.unwrap_or(args.seed);
    args.threads = common.threads_or_default();
    Ok(args)
}

/// Accumulates every event in memory so the analysis runs over the exact
/// stream a JSONL trace of the same run would replay.
#[derive(Default)]
struct CollectSink {
    events: Vec<(u64, SimEvent)>,
}

impl EventSink for CollectSink {
    fn record(&mut self, cycle: u64, event: &SimEvent) {
        self.events.push((cycle, *event));
    }
}

/// Everything the renderers need, derived from one pass over an event
/// stream. Replay and direct-run go through this same function, which is
/// what makes the two report bodies byte-identical.
struct Analysis {
    label: String,
    events: u64,
    report: EpisodeReport,
    /// Rendered timeline lines per `(core, episode)`.
    timelines: HashMap<(usize, u64), Vec<String>>,
}

fn analyze(label: &str, events: &[(u64, SimEvent)]) -> Analysis {
    let mut builder = EpisodeBuilder::new();
    let mut timelines: HashMap<(usize, u64), Vec<String>> = HashMap::new();
    for &(cycle, event) in events {
        builder.record(cycle, &event);
        if let Some(ep) = event.episode() {
            // A dummy miss belongs to the *owner's* (prospective) episode,
            // not the core that took the miss.
            let core = match event {
                SimEvent::DummyMiss { owner, .. } => owner,
                _ => event.core().unwrap_or(0),
            };
            timelines
                .entry((core, ep))
                .or_default()
                .push(format!("c{cycle:>8} {event}"));
        }
    }
    Analysis {
        label: label.to_string(),
        events: events.len() as u64,
        report: builder.report(),
        timelines,
    }
}

/// Reads a cs-trace JSONL capture, refusing schema mismatches.
fn load_trace(path: &str) -> Result<Vec<(u64, SimEvent)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| format!("{path}: empty trace"))?;
    let hv = JsonValue::parse(header).map_err(|e| format!("{path}:1: {e}"))?;
    match hv.get("schema").and_then(JsonValue::as_str) {
        Some(s) if s == EVENT_SCHEMA_VERSION => {}
        Some(s) => {
            return Err(format!(
                "{path}: trace schema is {s:?} but this cs-report reads \
                 {EVENT_SCHEMA_VERSION:?}; re-capture with a matching cs-trace"
            ))
        }
        None => {
            return Err(format!(
                "{path}: first line is not a schema header \
                 ({{\"schema\": \"{EVENT_SCHEMA_VERSION}\"}}); re-capture with cs-trace --jsonl"
            ))
        }
    }
    let mut out = Vec::new();
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let v = JsonValue::parse(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        out.push(event_from_json(&v).map_err(|e| format!("{path}:{}: {e}", i + 1))?);
    }
    Ok(out)
}

/// Runs `target` under `mode` with the same limits cs-trace uses, so a
/// report from a direct run matches a report from that run's trace.
fn run_workload(
    mode: SecurityMode,
    target: &str,
    insts: u64,
    seed: u64,
    fault: Option<FaultKind>,
    squeeze: bool,
) -> Result<Vec<(u64, SimEvent)>, String> {
    let programs = resolve_programs(target, seed)?;
    let sink = Shared::new(CollectSink::default());
    let mut builder = SimBuilder::new(mode);
    if squeeze {
        // The fuzzer's 2-line L1: speculative installs evict victims
        // constantly, so restore-path faults actually get opportunities.
        builder = builder.mem_config(fuzz_mem_config(programs.len(), seed));
    }
    builder = builder.seed(seed).sink(Box::new(sink.clone()));
    for p in programs {
        builder = builder.program(p);
    }
    if let Some(kind) = fault {
        builder = builder.fault_plan(FaultPlan::single(kind));
    }
    let mut sim = builder.build();
    sim.run(RunLimits {
        max_cycles: 100_000_000,
        max_insts_per_core: insts,
        ..RunLimits::default()
    });
    sim.drain(2_000);
    sim.finish_observer();
    Ok(sink.with(|s| s.events.clone()))
}

/// Aggregate episode-shape statistics over one report.
#[derive(Default)]
struct Shape {
    count: u64,
    open: u64,
    dur_min: u64,
    dur_mean: f64,
    dur_p50: u64,
    dur_p95: u64,
    dur_max: u64,
    squashes: u64,
    insns: u64,
    loads: u64,
    loads_issued: u64,
    invals: u64,
    restores: u64,
    raced: u64,
    dropped: u64,
    dummy: u64,
    bumps: u64,
    stall: u64,
    sefe_max: u64,
    overlapped: u64,
}

/// Nearest-rank percentile over a sorted slice (integer math: the result
/// must not depend on float rounding).
fn pct(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

fn shape(report: &EpisodeReport) -> Shape {
    let mut s = Shape {
        count: report.episodes.len() as u64,
        open: report.open_episodes() as u64,
        ..Shape::default()
    };
    let mut durations: Vec<u64> = report
        .episodes
        .iter()
        .filter(|e| e.closed)
        .map(|e| e.duration())
        .collect();
    durations.sort_unstable();
    if let (Some(&min), Some(&max)) = (durations.first(), durations.last()) {
        s.dur_min = min;
        s.dur_max = max;
        s.dur_mean = durations.iter().sum::<u64>() as f64 / durations.len() as f64;
        s.dur_p50 = pct(&durations, 50);
        s.dur_p95 = pct(&durations, 95);
    }
    for e in &report.episodes {
        s.squashes += e.squashes;
        s.insns += e.squashed_insns;
        s.loads += e.loads;
        s.loads_issued += e.loads_issued;
        s.invals += e.invals;
        s.restores += e.restores;
        s.raced += e.raced_fills;
        s.dropped += e.dropped_fills;
        s.dummy += e.dummy_misses;
        s.bumps += e.epoch_bumps;
        s.stall += e.stall;
        s.sefe_max = s.sefe_max.max(e.sefe_high);
        s.overlapped += u64::from(e.overlap_next > 0);
    }
    s
}

/// The top-K slowest closed episodes, slowest first; ties break toward
/// the earlier (core, id) so the ordering is total.
fn slowest(report: &EpisodeReport, k: usize) -> Vec<&EpisodeRecord> {
    let mut closed: Vec<&EpisodeRecord> = report.episodes.iter().filter(|e| e.closed).collect();
    closed.sort_by(|a, b| {
        b.duration()
            .cmp(&a.duration())
            .then(a.core.cmp(&b.core))
            .then(a.id.cmp(&b.id))
    });
    closed.truncate(k);
    closed
}

/// Leak counts per kind, in kind order.
fn leak_counts(report: &EpisodeReport) -> BTreeMap<&'static str, u64> {
    let mut counts = BTreeMap::new();
    for l in &report.leaks {
        *counts.entry(l.kind.as_str()).or_insert(0) += 1;
    }
    counts
}

/// Timeline lines shown per episode before eliding the middle.
const TIMELINE_HEAD: usize = 10;
const TIMELINE_TAIL: usize = 3;

fn write_timeline(out: &mut String, lines: &[String]) {
    out.push_str("```text\n");
    if lines.len() <= TIMELINE_HEAD + TIMELINE_TAIL + 1 {
        for l in lines {
            let _ = writeln!(out, "{l}");
        }
    } else {
        for l in &lines[..TIMELINE_HEAD] {
            let _ = writeln!(out, "{l}");
        }
        let _ = writeln!(
            out,
            "  … {} events elided …",
            lines.len() - TIMELINE_HEAD - TIMELINE_TAIL
        );
        for l in &lines[lines.len() - TIMELINE_TAIL..] {
            let _ = writeln!(out, "{l}");
        }
    }
    out.push_str("```\n");
}

fn render_markdown(analyses: &[Analysis], top: usize) -> String {
    let a = &analyses[0];
    let s = shape(&a.report);
    let mut out = String::new();
    let _ = writeln!(out, "# cs-report — speculation-episode forensics\n");
    let _ = writeln!(out, "| run | value |");
    let _ = writeln!(out, "|---|---|");
    let _ = writeln!(out, "| mode | {} |", a.label);
    let _ = writeln!(out, "| schema | {EVENT_SCHEMA_VERSION} |");
    let _ = writeln!(out, "| events | {} |", a.events);

    let _ = writeln!(out, "\n## Undo-coverage ledger\n");
    let _ = writeln!(
        out,
        "episodes reconstructed: {} ({} open at end of run)\n",
        s.count, s.open
    );
    if a.report.clean() {
        let _ = writeln!(out, "verdict: BALANCED — every undo ledger closed clean");
    } else {
        let _ = writeln!(
            out,
            "verdict: LEAKY — {} finding(s)\n",
            a.report.leaks.len()
        );
        let _ = writeln!(out, "| leak kind | count |");
        let _ = writeln!(out, "|---|---|");
        for (kind, n) in leak_counts(&a.report) {
            let _ = writeln!(out, "| {kind} | {n} |");
        }
        let _ = writeln!(out, "\nfindings (first 20):\n");
        for l in a.report.leaks.iter().take(20) {
            let _ = writeln!(out, "- {l}");
        }
        if a.report.leaks.len() > 20 {
            let _ = writeln!(out, "- … {} more", a.report.leaks.len() - 20);
        }
    }

    let _ = writeln!(out, "\n## Episode shape\n");
    let _ = writeln!(out, "| metric | value |");
    let _ = writeln!(out, "|---|---|");
    let _ = writeln!(
        out,
        "| duration min / mean / max | {} / {:.1} / {} |",
        s.dur_min, s.dur_mean, s.dur_max
    );
    let _ = writeln!(
        out,
        "| duration p50 / p95 | {} / {} |",
        s.dur_p50, s.dur_p95
    );
    let _ = writeln!(
        out,
        "| squashes merged | {} ({} insns) |",
        s.squashes, s.insns
    );
    let _ = writeln!(
        out,
        "| squashed loads | {} ({} issued) |",
        s.loads, s.loads_issued
    );
    let _ = writeln!(out, "| invalidations | {} |", s.invals);
    let _ = writeln!(out, "| restores | {} |", s.restores);
    let _ = writeln!(out, "| raced fills | {} |", s.raced);
    let _ = writeln!(out, "| dropped fills | {} |", s.dropped);
    let _ = writeln!(out, "| dummy misses | {} |", s.dummy);
    let _ = writeln!(out, "| epoch bumps | {} |", s.bumps);
    let _ = writeln!(out, "| stall cycles | {} |", s.stall);
    let _ = writeln!(out, "| SEFE high-water (max) | {} |", s.sefe_max);
    let _ = writeln!(out, "| overlapping episodes | {} |", s.overlapped);

    let slow = slowest(&a.report, top);
    let _ = writeln!(out, "\n## Slowest episodes (top {})\n", slow.len());
    for (i, e) in slow.iter().enumerate() {
        let _ = writeln!(
            out,
            "### {}. core{} episode {} — {} cycles\n",
            i + 1,
            e.core,
            e.id,
            e.duration()
        );
        let _ = writeln!(out, "| field | value |");
        let _ = writeln!(out, "|---|---|");
        let _ = writeln!(out, "| seq | {} |", e.seq);
        let _ = writeln!(
            out,
            "| window | {}..{} (cleanup from {}) |",
            e.start, e.end, e.cleanup_start
        );
        let _ = writeln!(
            out,
            "| squashes | {} ({} insns) |",
            e.squashes, e.squashed_insns
        );
        let _ = writeln!(out, "| loads | {} ({} issued) |", e.loads, e.loads_issued);
        let _ = writeln!(out, "| invals / restores | {} / {} |", e.invals, e.restores);
        let _ = writeln!(
            out,
            "| raced / dropped fills | {} / {} |",
            e.raced_fills, e.dropped_fills
        );
        let _ = writeln!(out, "| dummy misses | {} |", e.dummy_misses);
        let _ = writeln!(out, "| stall cycles | {} |", e.stall);
        let _ = writeln!(out, "| SEFE high-water | {} |", e.sefe_high);
        let _ = writeln!(out, "| overlap with next | {} |", e.overlap_next);
        let _ = writeln!(out);
        if let Some(lines) = a.timelines.get(&(e.core, e.id)) {
            write_timeline(&mut out, lines);
        }
    }

    if analyses.len() > 1 {
        let _ = writeln!(out, "\n## Scheme comparison\n");
        let mut header = String::from("| metric |");
        let mut rule = String::from("|---|");
        for b in analyses {
            let _ = write!(header, " {} |", b.label);
            rule.push_str("---|");
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{rule}");
        let shapes: Vec<Shape> = analyses.iter().map(|b| shape(&b.report)).collect();
        let row = |out: &mut String, name: &str, cell: &dyn Fn(usize) -> String| {
            let mut line = format!("| {name} |");
            for i in 0..analyses.len() {
                let _ = write!(line, " {} |", cell(i));
            }
            let _ = writeln!(out, "{line}");
        };
        row(&mut out, "events", &|i| analyses[i].events.to_string());
        row(&mut out, "episodes", &|i| shapes[i].count.to_string());
        row(&mut out, "open at end", &|i| shapes[i].open.to_string());
        row(&mut out, "duration p50", &|i| shapes[i].dur_p50.to_string());
        row(&mut out, "duration p95", &|i| shapes[i].dur_p95.to_string());
        row(&mut out, "duration max", &|i| shapes[i].dur_max.to_string());
        row(&mut out, "squashed loads", &|i| shapes[i].loads.to_string());
        row(&mut out, "invals", &|i| shapes[i].invals.to_string());
        row(&mut out, "restores", &|i| shapes[i].restores.to_string());
        row(&mut out, "raced fills", &|i| shapes[i].raced.to_string());
        row(&mut out, "dropped fills", &|i| {
            shapes[i].dropped.to_string()
        });
        row(&mut out, "stall cycles", &|i| shapes[i].stall.to_string());
        row(&mut out, "ledger leaks", &|i| {
            analyses[i].report.leaks.len().to_string()
        });
        row(&mut out, "verdict", &|i| {
            if analyses[i].report.clean() {
                "BALANCED".to_string()
            } else {
                "LEAKY".to_string()
            }
        });
    }
    out
}

fn render_json(analyses: &[Analysis], top: usize) -> String {
    let mut w = JsonWriter::new();
    w.open_object(None).string("schema", EVENT_SCHEMA_VERSION);
    w.open_array("modes");
    for a in analyses {
        let s = shape(&a.report);
        w.open_object(None)
            .string("mode", &a.label)
            .int("events", a.events)
            .int("episodes", s.count)
            .int("open", s.open)
            .string(
                "verdict",
                if a.report.clean() {
                    "balanced"
                } else {
                    "leaky"
                },
            );
        w.open_object(Some("shape"))
            .int("duration_min", s.dur_min)
            .float("duration_mean", s.dur_mean)
            .int("duration_p50", s.dur_p50)
            .int("duration_p95", s.dur_p95)
            .int("duration_max", s.dur_max)
            .int("squashes", s.squashes)
            .int("squashed_insns", s.insns)
            .int("loads", s.loads)
            .int("loads_issued", s.loads_issued)
            .int("invals", s.invals)
            .int("restores", s.restores)
            .int("raced_fills", s.raced)
            .int("dropped_fills", s.dropped)
            .int("dummy_misses", s.dummy)
            .int("epoch_bumps", s.bumps)
            .int("stall", s.stall)
            .int("sefe_high_max", s.sefe_max)
            .int("overlapping", s.overlapped)
            .close_object();
        w.open_array("leaks");
        for l in &a.report.leaks {
            w.open_object(None)
                .int("core", l.core as u64)
                .int("episode", l.episode)
                .int("line", l.line)
                .string("kind", l.kind.as_str())
                .close_object();
        }
        w.close_array();
        w.open_array("slowest");
        for e in slowest(&a.report, top) {
            w.open_object(None)
                .int("core", e.core as u64)
                .int("id", e.id)
                .int("seq", e.seq)
                .int("start", e.start)
                .int("cleanup_start", e.cleanup_start)
                .int("end", e.end)
                .int("duration", e.duration())
                .int("squashes", e.squashes)
                .int("squashed_insns", e.squashed_insns)
                .int("loads", e.loads)
                .int("loads_issued", e.loads_issued)
                .int("invals", e.invals)
                .int("restores", e.restores)
                .int("raced_fills", e.raced_fills)
                .int("dropped_fills", e.dropped_fills)
                .int("dummy_misses", e.dummy_misses)
                .int("stall", e.stall)
                .int("sefe_high", e.sefe_high)
                .int("overlap_next", e.overlap_next);
            w.open_array("timeline");
            if let Some(lines) = a.timelines.get(&(e.core, e.id)) {
                for l in lines {
                    w.string_item(l);
                }
            }
            w.close_array();
            w.close_object();
        }
        w.close_array();
        w.close_object();
    }
    w.close_array().close_object();
    let mut out = w.finish();
    out.push('\n');
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => return e,
    };
    let is_trace = args.target.ends_with(".jsonl");
    if is_trace && (args.compare || args.fault.is_some()) {
        eprintln!("cs-report: --compare/--fault need a runnable workload, not a trace");
        return ExitCode::FAILURE;
    }

    let analyses: Vec<Analysis> = if is_trace {
        match load_trace(&args.target) {
            Ok(events) => vec![analyze(args.mode.name(), &events)],
            Err(e) => {
                eprintln!("cs-report: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let modes: Vec<SecurityMode> = if args.compare {
            COMPARE_MODES.to_vec()
        } else {
            vec![args.mode]
        };
        let cfg = ExecConfig::with_threads(args.threads);
        let outcome = run_indexed(modes.len(), &cfg, |i| {
            let mode = modes[i];
            run_workload(
                mode,
                &args.target,
                args.insts,
                args.seed,
                args.fault,
                args.squeeze,
            )
            .map(|events| analyze(mode.name(), &events))
        });
        let mut done = Vec::with_capacity(modes.len());
        for (mode, slot) in modes.iter().zip(outcome.slots) {
            match slot {
                Some(Ok(a)) => done.push(a),
                Some(Err(e)) => {
                    eprintln!("cs-report: {e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("cs-report: {} run panicked", mode.name());
                    return ExitCode::FAILURE;
                }
            }
        }
        done
    };

    let body = if args.json {
        render_json(&analyses, args.top)
    } else {
        render_markdown(&analyses, args.top)
    };
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &body) {
                eprintln!("cs-report: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("report: {path}");
        }
        None => print!("{body}"),
    }

    let primary = &analyses[0];
    match args.expect {
        Some(Expect::Clean) if !primary.report.clean() => {
            eprintln!(
                "cs-report: expected a balanced ledger, found {} leak(s)",
                primary.report.leaks.len()
            );
            ExitCode::FAILURE
        }
        Some(Expect::Leaky) if primary.report.clean() => {
            eprintln!("cs-report: expected ledger leaks, found none");
            ExitCode::FAILURE
        }
        _ => ExitCode::SUCCESS,
    }
}
