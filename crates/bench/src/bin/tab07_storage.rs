//! Section 6.6 — Storage overhead of the Side-Effect Entries: the paper's
//! claim is <1 KB per core for 32 LQ + 64 L1-MSHR + 64 L2-MSHR entries,
//! scaling linearly.

use cleanupspec::sefe::{SefeLayout, SefeStorage};
use cleanupspec_bench::fmt::table;

fn main() {
    println!("== Section 6.6: SEFE storage overhead ==\n");
    let full = SefeLayout::full();
    let l2 = SefeLayout::l2();
    println!(
        "SEFE layout (LQ / L1-MSHR): {} bits = {} bytes  (isSpec 1 + Epoch {} + LoadID {} + fills 2 + evict-addr {})",
        full.bits(),
        full.bytes(),
        full.epoch_bits,
        full.load_id_bits,
        full.evict_addr_bits
    );
    println!(
        "SEFE layout (L2-MSHR):      {} bits = {} bytes\n",
        l2.bits(),
        l2.bytes()
    );
    let mut rows = Vec::new();
    for (label, s) in [
        ("paper config (32/64/64)", SefeStorage::paper_config()),
        (
            "2x queues (64/128/128)",
            SefeStorage {
                lq_entries: 64,
                l1_mshr_entries: 128,
                l2_mshr_entries: 128,
            },
        ),
        (
            "small core (16/16/16)",
            SefeStorage {
                lq_entries: 16,
                l1_mshr_entries: 16,
                l2_mshr_entries: 16,
            },
        ),
    ] {
        rows.push(vec![
            label.to_string(),
            s.lq_bytes().to_string(),
            s.l1_mshr_bytes().to_string(),
            s.l2_mshr_bytes().to_string(),
            s.total_bytes().to_string(),
            if s.total_bytes() < 1024 { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "configuration",
                "LQ B",
                "L1-MSHR B",
                "L2-MSHR B",
                "total B",
                "<1KB?"
            ],
            &rows
        )
    );
    println!("\npaper: <1 KB per core (the 32/64/64 configuration totals 800 B).");
}
