//! Table 5 — Cleanup statistics under CleanupSpec: squashes per
//! kilo-instruction, squashed loads per squash, and the state of squashed
//! loads (not-issued / L1-hit / L2-hit / L2-miss). Cleanup operations are
//! needed only for the L2H/L2M fraction.

use cleanupspec::modes::SecurityMode;
use cleanupspec_bench::fmt::{pct, table};
use cleanupspec_bench::runner::ExperimentConfig;
use cleanupspec_bench::Sweep;

fn main() {
    let cfg = ExperimentConfig::default();
    println!("== Table 5: cleanup statistics ==");
    println!("   {} instructions per workload\n", cfg.insts);
    let results = Sweep::new()
        .mode(SecurityMode::CleanupSpec)
        .config(&cfg)
        .run()
        .into_single_mode();
    let mut rows = Vec::new();
    for (w, r) in &results {
        let s = &r.cores[0];
        let total = s.squashed_loads().max(1) as f64;
        rows.push(vec![
            w.name.to_string(),
            format!("{:.2}", s.squash_pki()),
            format!("{:.2}", s.loads_per_squash()),
            pct(s.squashed_ni as f64 / total),
            pct(s.squashed_l1h as f64 / total),
            pct(s.squashed_l2h as f64 / total),
            pct(s.squashed_l2m as f64 / total),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "workload",
                "squashPKI",
                "loads/squash",
                "NI",
                "L1H",
                "L2H",
                "L2M"
            ],
            &rows
        )
    );
    println!("\npaper: NI+L1H >= ~98% of squashed loads for most workloads —");
    println!("cleanup operations are only needed for the small L2H/L2M tail;");
    println!("lbm stands out with ~4% L2H+L2M and ~24.5 loads per squash.");
}
