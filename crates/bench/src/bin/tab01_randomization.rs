//! Table 1 — The cost of CleanupSpec's randomization prerequisites on an
//! otherwise non-secure system: L1 random replacement, CEASER-randomized
//! L2 (with its 2-cycle latency charge), and both together.
//! Paper: 0.1%, 0.4%, and 0.8% slowdown respectively.

use cleanupspec::modes::SecurityMode;
use cleanupspec_bench::fmt::{geomean, slowdown_pct, table};
use cleanupspec_bench::runner::ExperimentConfig;
use cleanupspec_bench::Sweep;

fn main() {
    let cfg = ExperimentConfig::default();
    println!("== Table 1: randomization overheads (vs LRU/plain baseline) ==");
    println!("   {} instructions per workload\n", cfg.insts);
    let configs = [
        ("L1-Rand Replacement", SecurityMode::L1RandomOnly, "0.1%"),
        ("L2-Randomization", SecurityMode::L2RandomOnly, "0.4%"),
        ("Both Together", SecurityMode::BothRandomOnly, "0.8%"),
    ];
    // One sweep over baseline + all three configurations: the pool
    // balances the whole 4x19 matrix instead of four serial passes.
    let mut modes = vec![SecurityMode::NonSecure];
    modes.extend(configs.iter().map(|(_, m, _)| *m));
    let sweep = Sweep::new().modes(&modes).config(&cfg).run();
    sweep.warn_if_incomplete();
    let base = &sweep.mode(SecurityMode::NonSecure).expect("baseline").runs;
    let mut rows = Vec::new();
    for (label, mode, paper) in configs {
        let rs = &sweep.mode(mode).expect("swept mode").runs;
        let factors: Vec<f64> = base
            .iter()
            .zip(rs.iter())
            .map(|(b, r)| r.report.slowdown_vs(&b.report))
            .collect();
        let g = geomean(&factors);
        rows.push(vec![label.to_string(), slowdown_pct(g), paper.to_string()]);
    }
    println!(
        "{}",
        table(
            &["configuration", "slowdown(meas)", "slowdown(paper)"],
            &rows
        )
    );
    println!("\npaper: randomization is nearly free — random L1 replacement");
    println!("adds misses that the L2 absorbs, and CEASER costs 2 cycles of");
    println!("L2 latency; together under 1% slowdown.");
}
