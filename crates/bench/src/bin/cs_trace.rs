//! `cs-trace` — run a program under a security mode with the event bus
//! attached, then dump, export, and audit the event stream.
//!
//! ```sh
//! cs-trace programs/spectre_v1.s                      # dump + audit
//! cs-trace --mode cleanupspec programs/spectre_v1.s --perfetto out.json
//! cs-trace --mode nonsecure spectre_v1 --jsonl events.jsonl
//! cs-trace --mode cleanupspec gcc --insts 20000 --filter cleanup
//! ```
//!
//! The positional argument is either a micro-ISA `.s` file (assembled
//! with `cleanupspec-asm`) or a named workload: a Table-3 SPEC-like
//! workload (`gcc`, `astar`, ...), `spectre_v1`, `meltdown`, or
//! `mispredict_storm`.

use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::SimBuilder;
use cleanupspec_asm::assemble;
use cleanupspec_bench::cli::{CommonCli, DEFAULT_RING_CAPACITY, DEFAULT_SEED};
use cleanupspec_core::isa::Program;
use cleanupspec_core::system::RunLimits;
use cleanupspec_obs::{
    JsonlSink, LeakageAuditSink, MetricsRegistry, PerfettoSink, RingSink, Shared,
};
use cleanupspec_workloads::attacks::{
    meltdown_program, spectre_v1_program, MeltdownConfig, SpectreConfig,
};
use cleanupspec_workloads::micro::mispredict_storm;
use cleanupspec_workloads::spec::spec_workload;
use std::io::BufWriter;
use std::process::ExitCode;

struct Args {
    target: String,
    mode: SecurityMode,
    insts: u64,
    perfetto: Option<String>,
    jsonl: Option<String>,
    filter: Option<String>,
    dump: usize,
    seed: u64,
    ring_capacity: usize,
}

fn mode_by_name(name: &str) -> Option<SecurityMode> {
    SecurityMode::ALL.into_iter().find(|m| m.name() == name)
}

fn common_cli() -> CommonCli {
    CommonCli::new()
        .with_insts()
        .with_seed()
        .with_ring_capacity()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cs-trace [--mode <name>] [--insts N] [--seed N] \
         [--perfetto FILE] [--jsonl FILE] [--filter SUBSTR] [--dump N] \
         [--ring-capacity N] <file.s | workload>"
    );
    eprintln!("{}", common_cli().help());
    eprintln!(
        "modes: {}",
        SecurityMode::ALL
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    eprintln!(
        "workloads: any Table-3 name (gcc, astar, ...), spectre_v1, meltdown, mispredict_storm"
    );
    ExitCode::FAILURE
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut common = common_cli();
    let mut args = Args {
        target: String::new(),
        mode: SecurityMode::CleanupSpec,
        insts: 50_000,
        perfetto: None,
        jsonl: None,
        filter: None,
        dump: 40,
        seed: DEFAULT_SEED,
        ring_capacity: DEFAULT_RING_CAPACITY,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match common.accept(a, &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => {
                eprintln!("cs-trace: {e}");
                return Err(usage());
            }
        }
        match a.as_str() {
            "--mode" => match it.next().and_then(|m| mode_by_name(m)) {
                Some(m) => args.mode = m,
                None => return Err(usage()),
            },
            "--dump" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => args.dump = n,
                None => return Err(usage()),
            },
            "--perfetto" => match it.next() {
                Some(f) => args.perfetto = Some(f.clone()),
                None => return Err(usage()),
            },
            "--jsonl" => match it.next() {
                Some(f) => args.jsonl = Some(f.clone()),
                None => return Err(usage()),
            },
            "--filter" => match it.next() {
                Some(f) => args.filter = Some(f.clone()),
                None => return Err(usage()),
            },
            f if !f.starts_with('-') && args.target.is_empty() => {
                args.target = f.to_string();
            }
            _ => return Err(usage()),
        }
    }
    if args.target.is_empty() {
        return Err(usage());
    }
    args.insts = common.insts.unwrap_or(args.insts);
    args.seed = common.seed.unwrap_or(args.seed);
    args.ring_capacity = common.ring_capacity.unwrap_or(args.ring_capacity);
    Ok(args)
}

/// Resolves the positional argument to a program. `.s` paths are
/// assembled; everything else is looked up as a named workload.
fn resolve_program(target: &str, seed: u64) -> Result<Program, String> {
    if target.ends_with(".s") {
        let src =
            std::fs::read_to_string(target).map_err(|e| format!("cannot read {target}: {e}"))?;
        return assemble(target, &src).map_err(|e| format!("{target}:{e}"));
    }
    if let Some(w) = spec_workload(target) {
        return Ok(w.build(seed ^ cleanupspec_mem::rng::mix_str(w.name)));
    }
    match target {
        "spectre_v1" => Ok(spectre_v1_program(&SpectreConfig::default())),
        "meltdown" => Ok(meltdown_program(&MeltdownConfig::default())),
        "mispredict_storm" => Ok(mispredict_storm(2_000, 3, seed)),
        _ => Err(format!("unknown workload or file: {target}")),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => return e,
    };
    let program = match resolve_program(&args.target, args.seed) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cs-trace: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Sinks: ring (dump) + audit always; Perfetto/JSONL when requested.
    let ring = Shared::new(RingSink::new(args.ring_capacity));
    let audit = Shared::new(LeakageAuditSink::new());
    // The sink knows its output path, so the trace is written even if the
    // run panics (Drop flush) — not only on the happy path below.
    let perfetto = args
        .perfetto
        .as_ref()
        .map(|p| Shared::new(PerfettoSink::with_output(p)));
    let mut builder = SimBuilder::new(args.mode)
        .program(program)
        .seed(args.seed)
        .sink(Box::new(ring.clone()))
        .sink(Box::new(audit.clone()));
    if let Some(p) = &perfetto {
        builder = builder.sink(Box::new(p.clone()));
    }
    // Shared so the dropped-line counter can be read back after the run
    // and published as a host metric — write failures are not silent.
    let mut jsonl: Option<Shared<JsonlSink<BufWriter<std::fs::File>>>> = None;
    if let Some(path) = &args.jsonl {
        match std::fs::File::create(path) {
            Ok(f) => {
                let sink = Shared::new(JsonlSink::new(BufWriter::new(f)));
                builder = builder.sink(Box::new(sink.clone()));
                jsonl = Some(sink);
            }
            Err(e) => {
                eprintln!("cs-trace: cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut sim = builder.build();
    // Host self-profiling: wall-clock the run, then export the derived
    // rates as Perfetto counter tracks alongside the simulation's tracks.
    let mut host = MetricsRegistry::new();
    let start = std::time::Instant::now();
    sim.run(RunLimits {
        max_cycles: 100_000_000,
        max_insts_per_core: args.insts,
        ..RunLimits::default()
    });
    // Let in-flight fills land: insecure modes leak precisely via fills
    // completing after a squash, and the audit must see them.
    sim.drain(2_000);
    let wall = start.elapsed().as_secs_f64();
    host.add_timing("sim", wall);

    let r = sim.report();
    let (events, dropped) = ring.with(|s| (s.total_recorded(), s.dropped()));
    host.add("events_recorded", events);
    host.add("events_dropped", dropped);
    let sink_io_errors = jsonl.as_ref().map_or(0, |s| s.with(|j| j.io_errors()));
    host.add("sink_io_errors", sink_io_errors);
    let kips = if wall > 0.0 {
        r.total_insts() as f64 / 1000.0 / wall
    } else {
        0.0
    };
    let eps = if wall > 0.0 {
        events as f64 / wall
    } else {
        0.0
    };
    host.set_gauge("sim_kips", kips);
    host.set_gauge("events_per_sec", eps);
    let end_ts = sim.system().now();
    host.sample("sim_kips", end_ts, kips);
    host.sample("events_per_sec", end_ts, eps);
    if let Some(p) = &perfetto {
        p.with(|s| s.add_host_counters(host.samples().to_vec()));
    }
    sim.finish_observer();

    println!("mode       : {}", args.mode.name());
    println!("cycles     : {}", r.cycles);
    println!("insts      : {}  (IPC {:.3})", r.total_insts(), r.ipc());
    println!(
        "squashes   : {}  cleanup: {} invals, {} restores, {} dropped fills",
        r.cores[0].squashes, r.mem.cleanup_invals, r.mem.cleanup_restores, r.mem.dropped_fills
    );
    println!(
        "events     : {events}  ({dropped} dropped at ring capacity {})",
        args.ring_capacity
    );
    println!("host       : {wall:.2}s wall, {kips:.0} KIPS, {eps:.0} events/s");

    if let Some(path) = &args.perfetto {
        let p = perfetto.expect("sink exists when path given");
        match p.with(|s| s.write_output()) {
            Ok(bytes) => println!(
                "perfetto   : {path} ({} events, {bytes} bytes)",
                p.with(|s| s.len())
            ),
            Err(e) => {
                eprintln!("cs-trace: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &args.jsonl {
        // Re-read after finish_observer: the final flush can fail too.
        match jsonl.as_ref().map_or(0, |s| s.with(|j| j.io_errors())) {
            0 => println!("jsonl      : {path}"),
            n => {
                eprintln!("cs-trace: {path} is incomplete: {n} line(s) dropped on I/O errors");
                return ExitCode::FAILURE;
            }
        }
    }

    if args.dump > 0 {
        println!(
            "--- last {} events{} ---",
            args.dump,
            match &args.filter {
                Some(f) => format!(" matching \"{f}\""),
                None => String::new(),
            }
        );
        let records = ring.with(|s| s.to_vec());
        let matching: Vec<_> = records
            .iter()
            .filter(|r| match &args.filter {
                Some(f) => {
                    r.event.kind().contains(f.as_str())
                        || r.event.layer().as_str().contains(f.as_str())
                }
                None => true,
            })
            .copied()
            .collect();
        for r in matching.iter().rev().take(args.dump).rev() {
            println!("c{:>8} {}", r.cycle, r.event);
        }
    }

    let verdict = audit.with(|a| a.report());
    println!("{verdict}");
    if args.mode == SecurityMode::CleanupSpec && !verdict.clean() {
        eprintln!("cs-trace: cleanupspec run left speculative residue");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
