//! `cs-trace` — run a program under a security mode with the event bus
//! attached, then dump, export, and audit the event stream.
//!
//! ```sh
//! cs-trace programs/spectre_v1.s                      # dump + audit
//! cs-trace --mode cleanupspec programs/spectre_v1.s --perfetto out.json
//! cs-trace --mode nonsecure spectre_v1 --jsonl events.jsonl
//! cs-trace gcc --insts 20000 --filter cleanup-inval,cleanup-restore --core 0
//! ```
//!
//! The positional argument is anything [`resolve_programs`] accepts: a
//! micro-ISA `.s` file, a Table-3 SPEC-like workload (`gcc`, `astar`,
//! ...), `spectre_v1`, `meltdown`, `mispredict_storm`, or `smith:<seed>`.
//!
//! `--filter` takes a comma list of exact event-kind names (validated
//! against the `cs-events-v2` vocabulary) and `--core N` keeps only
//! events attributed to core N; both apply to the dump *and* the JSONL
//! export, but never to the audit or Perfetto sinks, which need the full
//! stream to stay sound.

use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::SimBuilder;
use cleanupspec_bench::cli::{CommonCli, DEFAULT_RING_CAPACITY, DEFAULT_SEED};
use cleanupspec_bench::fuzz::fuzz_mem_config;
use cleanupspec_bench::target::{resolve_programs, TARGET_HELP};
use cleanupspec_core::system::RunLimits;
use cleanupspec_obs::{
    EventSink, JsonlSink, LeakageAuditSink, MetricsRegistry, PerfettoSink, RingSink, Shared,
    SimEvent,
};
use std::io::BufWriter;
use std::process::ExitCode;

struct Args {
    target: String,
    mode: SecurityMode,
    insts: u64,
    perfetto: Option<String>,
    jsonl: Option<String>,
    filter: EventFilter,
    dump: usize,
    seed: u64,
    ring_capacity: usize,
    squeeze: bool,
}

/// The `--filter`/`--core` predicate shared by the dump and the JSONL
/// export.
#[derive(Clone, Default)]
struct EventFilter {
    /// Exact kind names to keep (`None` = every kind).
    kinds: Option<Vec<String>>,
    /// Core to keep (`None` = every core; core-less events are kept).
    core: Option<usize>,
}

impl EventFilter {
    /// Parses a comma list of kinds, rejecting names outside the
    /// `cs-events-v2` vocabulary (a typo must not silently empty the
    /// trace).
    fn parse_kinds(&mut self, list: &str) -> Result<(), String> {
        let mut kinds = Vec::new();
        for k in list.split(',').map(str::trim).filter(|k| !k.is_empty()) {
            if !SimEvent::KINDS.contains(&k) {
                return Err(format!(
                    "unknown event kind {k:?} (kinds: {})",
                    SimEvent::KINDS.join(", ")
                ));
            }
            kinds.push(k.to_string());
        }
        if kinds.is_empty() {
            return Err("--filter needs at least one kind".to_string());
        }
        self.kinds = Some(kinds);
        Ok(())
    }

    fn is_active(&self) -> bool {
        self.kinds.is_some() || self.core.is_some()
    }

    fn keeps(&self, event: &SimEvent) -> bool {
        if let Some(kinds) = &self.kinds {
            if !kinds.iter().any(|k| k == event.kind()) {
                return false;
            }
        }
        match (self.core, event.core()) {
            (Some(want), Some(core)) => want == core,
            _ => true,
        }
    }

    /// One-line description for the dump banner.
    fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let Some(kinds) = &self.kinds {
            parts.push(format!("kind in [{}]", kinds.join(", ")));
        }
        if let Some(core) = self.core {
            parts.push(format!("core {core}"));
        }
        parts.join(", ")
    }
}

/// Applies an [`EventFilter`] in front of another sink.
struct FilteredSink<S: EventSink> {
    filter: EventFilter,
    inner: S,
}

impl<S: EventSink> EventSink for FilteredSink<S> {
    fn record(&mut self, cycle: u64, event: &SimEvent) {
        if self.filter.keeps(event) {
            self.inner.record(cycle, event);
        }
    }

    fn finish(&mut self) {
        self.inner.finish();
    }
}

fn mode_by_name(name: &str) -> Option<SecurityMode> {
    SecurityMode::ALL.into_iter().find(|m| m.name() == name)
}

fn common_cli() -> CommonCli {
    CommonCli::new()
        .with_insts()
        .with_seed()
        .with_ring_capacity()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cs-trace [--mode <name>] [--insts N] [--seed N] \
         [--perfetto FILE] [--jsonl FILE] [--filter <kind>[,<kind>...]] \
         [--core N] [--dump N] [--ring-capacity N] [--squeeze] <file.s | workload>"
    );
    eprintln!("{}", common_cli().help());
    eprintln!(
        "modes: {}",
        SecurityMode::ALL
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    eprintln!("{TARGET_HELP}");
    ExitCode::FAILURE
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut common = common_cli();
    let mut args = Args {
        target: String::new(),
        mode: SecurityMode::CleanupSpec,
        insts: 50_000,
        perfetto: None,
        jsonl: None,
        filter: EventFilter::default(),
        dump: 40,
        seed: DEFAULT_SEED,
        ring_capacity: DEFAULT_RING_CAPACITY,
        squeeze: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match common.accept(a, &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => {
                eprintln!("cs-trace: {e}");
                return Err(usage());
            }
        }
        match a.as_str() {
            "--mode" => match it.next().and_then(|m| mode_by_name(m)) {
                Some(m) => args.mode = m,
                None => return Err(usage()),
            },
            "--dump" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => args.dump = n,
                None => return Err(usage()),
            },
            "--perfetto" => match it.next() {
                Some(f) => args.perfetto = Some(f.clone()),
                None => return Err(usage()),
            },
            "--jsonl" => match it.next() {
                Some(f) => args.jsonl = Some(f.clone()),
                None => return Err(usage()),
            },
            "--filter" => match it.next() {
                Some(f) => {
                    if let Err(e) = args.filter.parse_kinds(f) {
                        eprintln!("cs-trace: {e}");
                        return Err(usage());
                    }
                }
                None => return Err(usage()),
            },
            "--core" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => args.filter.core = Some(n),
                None => return Err(usage()),
            },
            "--squeeze" => args.squeeze = true,
            f if !f.starts_with('-') && args.target.is_empty() => {
                args.target = f.to_string();
            }
            _ => return Err(usage()),
        }
    }
    if args.target.is_empty() {
        return Err(usage());
    }
    args.insts = common.insts.unwrap_or(args.insts);
    args.seed = common.seed.unwrap_or(args.seed);
    args.ring_capacity = common.ring_capacity.unwrap_or(args.ring_capacity);
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => return e,
    };
    let programs = match resolve_programs(&args.target, args.seed) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cs-trace: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Sinks: ring (dump) + audit always; Perfetto/JSONL when requested.
    let ring = Shared::new(RingSink::new(args.ring_capacity));
    let audit = Shared::new(LeakageAuditSink::new());
    // The sink knows its output path, so the trace is written even if the
    // run panics (Drop flush) — not only on the happy path below.
    let perfetto = args
        .perfetto
        .as_ref()
        .map(|p| Shared::new(PerfettoSink::with_output(p)));
    let mut builder = SimBuilder::new(args.mode);
    if args.squeeze {
        // The fuzzer's 2-line L1 (same knob as cs-report --squeeze):
        // constant victim pressure, so restore-path activity shows up in
        // short traces.
        builder = builder.mem_config(fuzz_mem_config(programs.len(), args.seed));
    }
    builder = builder
        .seed(args.seed)
        .sink(Box::new(ring.clone()))
        .sink(Box::new(audit.clone()));
    for p in programs {
        builder = builder.program(p);
    }
    if let Some(p) = &perfetto {
        builder = builder.sink(Box::new(p.clone()));
    }
    // Shared so the dropped-line counter can be read back after the run
    // and published as a host metric — write failures are not silent.
    let mut jsonl: Option<Shared<JsonlSink<BufWriter<std::fs::File>>>> = None;
    if let Some(path) = &args.jsonl {
        match std::fs::File::create(path) {
            Ok(f) => {
                let sink = Shared::new(JsonlSink::new(BufWriter::new(f)));
                // --filter/--core narrow the export too, so a capture of
                // just the cleanup kinds stays small on long runs.
                builder = builder.sink(Box::new(FilteredSink {
                    filter: args.filter.clone(),
                    inner: sink.clone(),
                }));
                jsonl = Some(sink);
            }
            Err(e) => {
                eprintln!("cs-trace: cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut sim = builder.build();
    // Host self-profiling: wall-clock the run, then export the derived
    // rates as Perfetto counter tracks alongside the simulation's tracks.
    let mut host = MetricsRegistry::new();
    let start = std::time::Instant::now();
    sim.run(RunLimits {
        max_cycles: 100_000_000,
        max_insts_per_core: args.insts,
        ..RunLimits::default()
    });
    // Let in-flight fills land: insecure modes leak precisely via fills
    // completing after a squash, and the audit must see them.
    sim.drain(2_000);
    let wall = start.elapsed().as_secs_f64();
    host.add_timing("sim", wall);

    let r = sim.report();
    let (events, dropped) = ring.with(|s| (s.total_recorded(), s.dropped()));
    host.add("events_recorded", events);
    host.add("events_dropped", dropped);
    let sink_io_errors = jsonl.as_ref().map_or(0, |s| s.with(|j| j.io_errors()));
    host.add("sink_io_errors", sink_io_errors);
    let kips = if wall > 0.0 {
        r.total_insts() as f64 / 1000.0 / wall
    } else {
        0.0
    };
    let eps = if wall > 0.0 {
        events as f64 / wall
    } else {
        0.0
    };
    host.set_gauge("sim_kips", kips);
    host.set_gauge("events_per_sec", eps);
    let end_ts = sim.system().now();
    host.sample("sim_kips", end_ts, kips);
    host.sample("events_per_sec", end_ts, eps);
    if let Some(p) = &perfetto {
        p.with(|s| s.add_host_counters(host.samples().to_vec()));
    }
    sim.finish_observer();

    println!("mode       : {}", args.mode.name());
    println!("cycles     : {}", r.cycles);
    println!("insts      : {}  (IPC {:.3})", r.total_insts(), r.ipc());
    println!(
        "squashes   : {}  cleanup: {} invals, {} restores, {} dropped fills",
        r.cores[0].squashes, r.mem.cleanup_invals, r.mem.cleanup_restores, r.mem.dropped_fills
    );
    println!(
        "events     : {events}  ({dropped} dropped at ring capacity {})",
        args.ring_capacity
    );
    println!("host       : {wall:.2}s wall, {kips:.0} KIPS, {eps:.0} events/s");

    if let Some(path) = &args.perfetto {
        let p = perfetto.expect("sink exists when path given");
        match p.with(|s| s.write_output()) {
            Ok(bytes) => println!(
                "perfetto   : {path} ({} events, {bytes} bytes)",
                p.with(|s| s.len())
            ),
            Err(e) => {
                eprintln!("cs-trace: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &args.jsonl {
        // Re-read after finish_observer: the final flush can fail too.
        match jsonl.as_ref().map_or(0, |s| s.with(|j| j.io_errors())) {
            0 => println!("jsonl      : {path}"),
            n => {
                eprintln!("cs-trace: {path} is incomplete: {n} line(s) dropped on I/O errors");
                return ExitCode::FAILURE;
            }
        }
    }

    if args.dump > 0 {
        println!(
            "--- last {} events{} ---",
            args.dump,
            if args.filter.is_active() {
                format!(" matching {}", args.filter.describe())
            } else {
                String::new()
            }
        );
        let records = ring.with(|s| s.to_vec());
        let matching: Vec<_> = records
            .iter()
            .filter(|r| args.filter.keeps(&r.event))
            .copied()
            .collect();
        for r in matching.iter().rev().take(args.dump).rev() {
            println!("c{:>8} {}", r.cycle, r.event);
        }
    }

    let verdict = audit.with(|a| a.report());
    println!("{verdict}");
    if args.mode == SecurityMode::CleanupSpec && !verdict.clean() {
        eprintln!("cs-trace: cleanupspec run left speculative residue");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
