//! Figure 15 — Breakup of cleaned-up loads (squashed L1 misses) into those
//! still inflight at squash time (whose pending request is simply dropped)
//! versus already executed (needing invalidation/restoration). Paper:
//! about half of squashed L1-miss loads are still inflight.

use cleanupspec::modes::SecurityMode;
use cleanupspec_bench::fmt::{pct, table};
use cleanupspec_bench::runner::ExperimentConfig;
use cleanupspec_bench::Sweep;

fn main() {
    let cfg = ExperimentConfig::default();
    println!("== Figure 15: squashed L1-miss loads, inflight vs executed ==");
    println!("   {} instructions per workload\n", cfg.insts);
    let results = Sweep::new()
        .mode(SecurityMode::CleanupSpec)
        .config(&cfg)
        .run()
        .into_single_mode();
    let mut rows = Vec::new();
    let (mut ti, mut te) = (0u64, 0u64);
    for (w, r) in &results {
        let s = &r.cores[0];
        let (inf, exe) = (s.squashed_miss_inflight, s.squashed_miss_executed);
        ti += inf;
        te += exe;
        let tot = (inf + exe).max(1);
        rows.push(vec![
            w.name.to_string(),
            inf.to_string(),
            exe.to_string(),
            pct(inf as f64 / tot as f64),
        ]);
    }
    let tot = (ti + te).max(1);
    rows.push(vec![
        "TOTAL".into(),
        ti.to_string(),
        te.to_string(),
        pct(ti as f64 / tot as f64),
    ]);
    println!(
        "{}",
        table(
            &["workload", "inflight", "executed", "inflight-share"],
            &rows
        )
    );
    println!("\npaper: ~50% of squashed L1-misses are still inflight — those");
    println!("need only a dropped response, no invalidation or restoration.");
}
