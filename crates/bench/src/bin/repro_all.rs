//! Runs every experiment binary's logic in sequence, printing the complete
//! paper-reproduction report (all tables and figures). Equivalent to
//! running each `figXX_*` / `tabXX_*` binary, but in one process.
//!
//! Control sizing with `CLEANUPSPEC_INSTS` (instructions per workload) and
//! `CLEANUPSPEC_ATTACK_ITERS`.

use std::process::Command;

const EXPERIMENTS: [&str; 12] = [
    "tab03_characteristics",
    "fig04_invisispec_motivation",
    "tab01_randomization",
    "fig09_coherence_breakdown",
    "fig11_spectre_poc",
    "fig12_slowdown",
    "fig13_squashes",
    "fig14_stall_breakdown",
    "fig15_inflight_vs_executed",
    "tab05_cleanup_stats",
    "tab06_comparison",
    "tab07_storage",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for name in EXPERIMENTS {
        println!("\n{}", "=".repeat(72));
        let path = dir.join(name);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            eprintln!("experiment {name} failed with {status}");
            std::process::exit(1);
        }
    }
    println!("\nAll {} experiments completed.", EXPERIMENTS.len());
}
