//! Runs every experiment binary's logic in sequence, printing the complete
//! paper-reproduction report (all tables and figures). Equivalent to
//! running each `figXX_*` / `tabXX_*` binary, but in one process.
//!
//! Control sizing with `CLEANUPSPEC_INSTS` (instructions per workload) and
//! `CLEANUPSPEC_ATTACK_ITERS`.
//!
//! `--checkpoint-dir DIR` (or `CLEANUPSPEC_CHECKPOINT_DIR`) turns on the
//! cs-snap result cache: the figure binaries share many (workload, mode,
//! insts, seed) configurations, and each completed run is written as a
//! self-validating checkpoint so later experiments — and later whole
//! invocations — load the report instead of re-simulating it.

use std::process::Command;

const EXPERIMENTS: [&str; 12] = [
    "tab03_characteristics",
    "fig04_invisispec_motivation",
    "tab01_randomization",
    "fig09_coherence_breakdown",
    "fig11_spectre_poc",
    "fig12_slowdown",
    "fig13_squashes",
    "fig14_stall_breakdown",
    "fig15_inflight_vs_executed",
    "tab05_cleanup_stats",
    "tab06_comparison",
    "tab07_storage",
];

fn main() {
    let mut checkpoint_dir: Option<String> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--checkpoint-dir" => match it.next() {
                Some(d) => checkpoint_dir = Some(d.clone()),
                None => {
                    eprintln!("usage: repro_all [--checkpoint-dir DIR]");
                    std::process::exit(2);
                }
            },
            _ => {
                eprintln!("usage: repro_all [--checkpoint-dir DIR]");
                std::process::exit(2);
            }
        }
    }
    if let Some(dir) = &checkpoint_dir {
        println!("cs-snap checkpoint cache: {dir}");
    }

    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for name in EXPERIMENTS {
        println!("\n{}", "=".repeat(72));
        let path = dir.join(name);
        let mut cmd = Command::new(&path);
        // Children read the cache via CLEANUPSPEC_CHECKPOINT_DIR
        // (runner::checkpoint_dir_from_env); the flag just sets it for them.
        if let Some(ckpt) = &checkpoint_dir {
            cmd.env("CLEANUPSPEC_CHECKPOINT_DIR", ckpt);
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            eprintln!("experiment {name} failed with {status}");
            std::process::exit(1);
        }
    }
    println!("\nAll {} experiments completed.", EXPERIMENTS.len());
}
