//! A minimal wall-clock micro-benchmark harness (stand-in for Criterion,
//! which cannot be fetched in an offline build).
//!
//! Each benchmark auto-calibrates its iteration count to a small time
//! budget and prints one `group/name  median ns/iter` line. `harness =
//! false` bench targets call [`Bencher::run`] from a plain `main`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-process benchmark driver: owns the time budget and output format.
pub struct Bencher {
    /// Target measuring time per benchmark.
    budget: Duration,
    /// Optional substring filter (first CLI argument, Criterion-style).
    filter: Option<String>,
}

impl Default for Bencher {
    fn default() -> Self {
        Bencher::new()
    }
}

impl Bencher {
    /// A bencher with a ~120 ms per-benchmark budget and the process's
    /// first CLI argument as a name filter.
    pub fn new() -> Self {
        Bencher {
            budget: Duration::from_millis(120),
            filter: std::env::args().nth(1),
        }
    }

    /// Runs one benchmark: calibrates an iteration count to the budget,
    /// takes 5 samples, and prints the median time per iteration. The
    /// closure's result is passed through [`black_box`] so the computation
    /// cannot be optimized away.
    pub fn run<R>(&self, group: &str, name: &str, mut f: impl FnMut() -> R) {
        let full = format!("{group}/{name}");
        if let Some(fil) = &self.filter {
            if !full.contains(fil.as_str()) {
                return;
            }
        }
        // Calibrate: double iterations until one batch costs >= budget/10.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed * 10 >= self.budget || iters >= 1 << 30 {
                break;
            }
            iters = (iters * 2).max(1);
        }
        // Sample.
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        println!("{full:<44} {median:>12.1} ns/iter  (x{iters})");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_measures_and_prints() {
        let b = Bencher {
            budget: Duration::from_millis(2),
            filter: None,
        };
        let mut n = 0u64;
        b.run("test", "counting", || {
            n = n.wrapping_add(1);
            n
        });
        assert!(n > 0, "closure must have been executed");
    }

    #[test]
    fn filter_skips_non_matching() {
        let b = Bencher {
            budget: Duration::from_millis(2),
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        b.run("test", "skipped", || ran = true);
        assert!(!ran);
    }
}
