//! # cleanupspec-bench
//!
//! Experiment harness for the CleanupSpec reproduction: one binary per
//! table/figure of the paper (see `src/bin/`), plus wall-clock
//! microbenchmarks (see `benches/`). This library holds the shared
//! experiment runner, the micro-benchmark harness, and plain-text
//! table/chart formatting.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attribution;
pub mod bench_report;
pub mod chaos;
pub mod fmt;
pub mod fuzz;
pub mod microbench;
pub mod runner;
pub mod svg;

pub use attribution::{diff_stacks, top_overheads, StackDelta};
pub use bench_report::{
    check_document, compare_documents, BenchEntry, BenchReport, ModeSection, Regression, SCHEMA,
};
pub use chaos::{
    detection_matrix, probe_fault, render_matrix, run_chaos_campaign, ChaosOpts, ChaosSummary,
    FaultProbe, MatrixRow,
};
pub use fuzz::{run_campaign, run_seed, shrink, CampaignResult, SeedVerdict, Violation};
pub use runner::{run_all_spec, run_spec_workload, ExperimentConfig};
