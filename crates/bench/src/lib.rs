//! # cleanupspec-bench
//!
//! Experiment harness for the CleanupSpec reproduction: one binary per
//! table/figure of the paper (see `src/bin/`), plus wall-clock
//! microbenchmarks (see `benches/`). This library holds the shared
//! experiment runner, the micro-benchmark harness, and plain-text
//! table/chart formatting.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attribution;
pub mod bench_report;
pub mod chaos;
pub mod cli;
pub mod exec;
pub mod fmt;
pub mod fuzz;
pub mod journal;
pub mod microbench;
pub mod runner;
pub mod store;
pub mod suite;
pub mod svg;
pub mod target;

pub use attribution::{diff_stacks, top_overheads, StackDelta};
pub use bench_report::{
    canonical_json, check_document, compare_documents, BenchEntry, BenchReport, ModeSection,
    Regression, SCHEMA,
};
pub use chaos::{
    detection_matrix, probe_fault, render_matrix, run_chaos_campaign, ChaosOpts, ChaosSummary,
    FaultProbe, MatrixRow,
};
pub use exec::{
    default_threads, run_indexed, run_static_chunked, ExecConfig, ExecOutcome, ExecStats,
    ModeSweep, PanicPolicy, Sweep, SweepFailure, SweepResult, SweepRun, TaskFailure,
};
pub use fuzz::{run_campaign, run_seed, shrink, CampaignResult, SeedVerdict, Violation};
pub use journal::{
    check_resume, host_fault_matrix, render_host_matrix, HostMatrixRow, Journal, JournalHeader,
};
pub use store::{
    shared_dir_store, ArtifactStore, DirStore, FaultFs, HostFaultKind, HostFaultPlan, MemStore,
    StoreError, StoreStats,
};
// The deprecated shims stay re-exported for one release so downstream
// `use cleanupspec_bench::run_all_spec` keeps compiling (with a warning).
pub use runner::ExperimentConfig;
#[allow(deprecated)]
pub use runner::{run_all_spec, run_spec_workload};
pub use suite::{run_suite, SuiteOptions, SuiteOutcome, SMOKE_WORKLOADS};
pub use target::{resolve_programs, TARGET_HELP};
