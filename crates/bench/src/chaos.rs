//! `cs-chaos` — the systematic fault-injection campaign driver.
//!
//! PR 2's planted `SkipRestore` bug proved the differential oracles have
//! teeth against *one* hand-picked failure. This module generalizes that
//! argument: every [`FaultKind`] the memory hierarchy and undo engine can
//! inject is driven against seeded smith programs until it (a) actually
//! fires and (b) is flagged by at least one detector, producing a
//! **fault-detection matrix** — the machine-checked claim that no fault
//! class escapes the safety net.
//!
//! Detectors (matrix columns):
//!
//! * `arch` / `cache` / `audit` / `episode` — the four cs-smith oracles
//!   from [`crate::fuzz`] (architectural equivalence, cache-restoration
//!   membership + invariants, leakage audit, and the episode-granular
//!   undo-coverage ledger that pins each residue to the squash whose
//!   cleanup should have covered it).
//! * `watchdog` — the forward-progress watchdog: the run stopped with
//!   [`StopReason::Livelock`] (how `leak-mshr-slot` surfaces once the
//!   MSHR file exhausts).
//! * `witness` — the dual-run L1 victim witness: two runs that differ
//!   *only* in `repl_seed_salt` must pick different eviction victims; if
//!   the faulted pair agrees while the clean control pair diverges, the
//!   replacement policy has gone deterministic (`deterministic-l1-replacement`
//!   is invisible to the state oracles — the cache contents stay legal).
//!
//! Campaigns are **crash-isolated**: each seed runs inside
//! `catch_unwind`, a panicking engine is recorded as a `"panic"`-oracle
//! failure with full repro artifacts (seed, fault plan, shrunk `.s`
//! programs, ring-buffer event dump) instead of aborting the run, and the
//! driver ends with a triage summary.

use crate::fuzz::{self, exec_env, judge, merged_image, ExecEnv, ModeRun, SeedVerdict, Violation};
use crate::journal::{Journal, JournalHeader};
use crate::store::{shared_dir_store, ArtifactStore};
use cleanupspec::modes::SecurityMode;
use cleanupspec_asm::disassemble;
use cleanupspec_core::isa::Program;
use cleanupspec_core::pipeline::CoreConfig;
use cleanupspec_core::reference::{interpret, RefRun};
use cleanupspec_core::system::{RunLimits, StopReason, System};
use cleanupspec_mem::fault::{FaultInjector, FaultKind, FaultPlan};
use cleanupspec_mem::hierarchy::MemHierarchy;
use cleanupspec_mem::types::Cycle;
use cleanupspec_obs::{Observer, RingSink, Shared};
use cleanupspec_workloads::smith::{assemble_plan, plan, SmithPlan};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// MSHR file size for `leak-mshr-slot` probes: small enough that the leak
/// exhausts it within a few squash bursts.
const MSHR_SQUEEZE: usize = 8;

/// Watchdog used for chaos probes that are expected to livelock — tight,
/// so a stuck run is diagnosed in thousands of cycles, not millions.
const CHAOS_WATCHDOG: Cycle = 10_000;

/// Event ring capacity for repro artifacts (keeps the tail of the run,
/// which is where squash/cleanup activity concentrates).
const RING_CAP: usize = 4096;

/// Replacement-seed salt for the second run of a witness pair.
const WITNESS_SALT: u64 = 0x5A17_C0DE;

/// Minimum evictions per core before a witness digest is trusted: with
/// fewer victims, two honest random policies can agree by chance.
const WITNESS_MIN_VICTIMS: u64 = 8;

/// One fault probed on one seed: did it fire, and who noticed?
#[derive(Clone, Debug)]
pub struct FaultProbe {
    /// The injected fault.
    pub kind: FaultKind,
    /// Generating seed.
    pub seed: u64,
    /// Times the hook site was reached.
    pub opportunities: u64,
    /// Times the fault actually fired.
    pub fires: u64,
    /// Detector labels that flagged the run (`arch`, `cache`, `audit`,
    /// `episode`, `watchdog`, `witness`).
    pub detectors: Vec<&'static str>,
    /// Oracle violations from the faulted run (empty for detections that
    /// are not oracle-shaped, e.g. the witness compare).
    pub violations: Vec<Violation>,
}

impl FaultProbe {
    /// Detected = the fault really fired *and* at least one detector saw it.
    pub fn detected(&self) -> bool {
        self.fires > 0 && !self.detectors.is_empty()
    }
}

/// One row of the fault-detection matrix.
#[derive(Clone, Debug)]
pub struct MatrixRow {
    /// The fault class this row proves (or fails to prove) detectable.
    pub kind: FaultKind,
    /// Seeds probed before detection (or the scan budget, if never).
    pub seeds_scanned: u64,
    /// The first detecting probe, if any.
    pub probe: Option<FaultProbe>,
}

impl MatrixRow {
    /// Whether this fault class was caught.
    pub fn detected(&self) -> bool {
        self.probe.is_some()
    }
}

/// Builds the per-kind [`ExecEnv`]; the caller keeps the returned injector
/// clone to read fire counters back after the run.
fn env_for(kind: FaultKind) -> (ExecEnv, FaultInjector) {
    let inj = FaultInjector::new(FaultPlan::single(kind));
    let mut env = ExecEnv {
        faults: inj.clone(),
        ..ExecEnv::default()
    };
    if kind == FaultKind::LeakMshrSlot {
        env.mshrs_per_core = Some(MSHR_SQUEEZE);
        env.watchdog = Some(CHAOS_WATCHDOG);
    }
    if kind == FaultKind::EarlyCoherenceDowngrade {
        // The fuzz default L1 holds 2 lines, so the sharer core's M lines
        // are evicted (losing directory ownership) before a wrong-path
        // load can find them. A roomier L1 keeps remote ownership alive
        // long enough for GetS-Safe refusals — the fault's opportunity —
        // to actually occur.
        env.l1_geometry = Some((8 * 1024, 4));
    }
    (env, inj)
}

/// True when every core with enough evictions in both runs produced the
/// same victim digest (and at least one core had enough).
fn witness_agree(a: &ModeRun, b: &ModeRun) -> bool {
    let mut any = false;
    for (wa, wb) in a.l1_victim_witness.iter().zip(&b.l1_victim_witness) {
        if wa.1 >= WITNESS_MIN_VICTIMS && wb.1 >= WITNESS_MIN_VICTIMS {
            if wa.0 != wb.0 {
                return false;
            }
            any = true;
        }
    }
    any
}

/// Probes one fault against one smith plan under CleanupSpec.
pub fn probe_plan(kind: FaultKind, p: &SmithPlan) -> FaultProbe {
    let mut probe = FaultProbe {
        kind,
        seed: p.seed,
        opportunities: 0,
        fires: 0,
        detectors: Vec::new(),
        violations: Vec::new(),
    };
    let progs: Vec<Arc<Program>> = assemble_plan(p).into_iter().map(Arc::new).collect();
    let refs: Vec<RefRun> = progs
        .iter()
        .map(|pr| interpret(pr, fuzz::REF_STEP_CAP))
        .collect();
    if refs.iter().any(|r| !r.halted) {
        return probe; // Generator bug; nothing to judge against.
    }
    let ref_mem_digest = merged_image(&refs).image_digest();
    let mode = SecurityMode::CleanupSpec;

    if kind == FaultKind::DeterministicL1Replacement {
        // This fault leaves every oracle-visible state legal — the caches
        // hold exactly the right lines, just chosen by a predictable
        // victim policy (the randomness CleanupSpec leans on to decouple
        // evictions from addresses). Detection is the dual-run witness:
        // re-salt the L1 replacement RNG and compare victim digests.
        let run_pair = |faulted: bool| -> (ModeRun, ModeRun, FaultInjector) {
            let one = |salt: u64| -> (ModeRun, FaultInjector) {
                let inj = if faulted {
                    FaultInjector::new(FaultPlan::single(kind))
                } else {
                    FaultInjector::disabled()
                };
                let env = ExecEnv {
                    faults: inj.clone(),
                    repl_seed_salt: salt,
                    ..ExecEnv::default()
                };
                (
                    exec_env(&progs, mode, p.seed, |_| mode.build_scheme(), &env),
                    inj,
                )
            };
            let (a, inj) = one(0);
            let (b, _) = one(WITNESS_SALT);
            (a, b, inj)
        };
        let (fa, fb, inj) = run_pair(true);
        probe.opportunities = inj.counters(kind).opportunities;
        probe.fires = inj.fires(kind);
        if probe.fires > 0 && witness_agree(&fa, &fb) {
            let (ca, cb, _) = run_pair(false);
            if !witness_agree(&ca, &cb) {
                probe.detectors.push("witness");
            }
        }
        return probe;
    }

    let (env, inj) = env_for(kind);
    let run = exec_env(&progs, mode, p.seed, |_| mode.build_scheme(), &env);
    probe.opportunities = inj.counters(kind).opportunities;
    probe.fires = inj.fires(kind);
    if matches!(run.stop, StopReason::Livelock(_)) {
        probe.detectors.push("watchdog");
    }
    probe.violations = judge(p.seed, mode, &refs, ref_mem_digest, &run);
    for v in &probe.violations {
        if !probe.detectors.contains(&v.oracle) {
            probe.detectors.push(v.oracle);
        }
    }
    probe
}

/// Probes one fault against one seed ([`probe_plan`] on the generated plan).
pub fn probe_fault(kind: FaultKind, seed: u64) -> FaultProbe {
    probe_plan(kind, &plan(seed))
}

/// Scans seeds from `start` until `kind` both fires and is detected, or
/// the budget of `max_seeds` runs out.
pub fn scan_fault(kind: FaultKind, start: u64, max_seeds: u64) -> MatrixRow {
    for i in 0..max_seeds {
        let probe = probe_fault(kind, start + i);
        if probe.detected() {
            return MatrixRow {
                kind,
                seeds_scanned: i + 1,
                probe: Some(probe),
            };
        }
    }
    MatrixRow {
        kind,
        seeds_scanned: max_seeds,
        probe: None,
    }
}

/// Builds the full fault-detection matrix: every [`FaultKind`], scanned
/// on the shared work-stealing pool (results are per-fault
/// deterministic, so threading cannot change a verdict; rows come back
/// in `FaultKind::ALL` order regardless of scheduling).
pub fn detection_matrix(start: u64, max_seeds: u64) -> Vec<MatrixRow> {
    let outcome = crate::exec::run_indexed(
        FaultKind::ALL.len(),
        &crate::exec::ExecConfig::default(),
        |i| scan_fault(FaultKind::ALL[i], start, max_seeds),
    );
    assert!(
        outcome.is_complete(),
        "matrix worker panicked: {:?}",
        outcome.failures
    );
    outcome.slots.into_iter().flatten().collect()
}

/// Detector labels, in matrix-column order.
pub const DETECTORS: [&str; 6] = ["arch", "cache", "audit", "episode", "watchdog", "witness"];

/// Renders the matrix as a fixed-width table plus a one-line verdict.
pub fn render_matrix(rows: &[MatrixRow]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{:<30} {:>8} {:>5} {:>6} {:>6}",
        "fault", "seed", "scan", "opps", "fires"
    );
    for d in DETECTORS {
        let _ = write!(out, " {d:>8}");
    }
    out.push('\n');
    for r in rows {
        match &r.probe {
            Some(p) => {
                let _ = write!(
                    out,
                    "{:<30} {:>8} {:>5} {:>6} {:>6}",
                    r.kind.name(),
                    format!("{:#x}", p.seed),
                    r.seeds_scanned,
                    p.opportunities,
                    p.fires
                );
                for d in DETECTORS {
                    let mark = if p.detectors.contains(&d) { "X" } else { "." };
                    let _ = write!(out, " {mark:>8}");
                }
                out.push('\n');
            }
            None => {
                let _ = writeln!(
                    out,
                    "{:<30} {:>8} {:>5} {:>6} {:>6}  NOT DETECTED",
                    r.kind.name(),
                    "-",
                    r.seeds_scanned,
                    "-",
                    "-"
                );
            }
        }
    }
    let caught = rows.iter().filter(|r| r.detected()).count();
    let _ = writeln!(out, "{caught}/{} fault classes detected", rows.len());
    out
}

/// Options for a crash-isolated chaos campaign.
#[derive(Clone, Debug, Default)]
pub struct ChaosOpts {
    /// First seed.
    pub start: u64,
    /// Number of seeds.
    pub count: u64,
    /// Fault to inject on every seed (`None` = clean differential fuzzing
    /// with crash isolation and artifacts on top).
    pub fault: Option<FaultKind>,
    /// Where to write per-failure repro artifact directories.
    pub artifact_dir: Option<PathBuf>,
    /// Shrink failing plans before exporting `.s` files.
    pub shrink: bool,
    /// Plant a deliberate panic at this seed — the isolation self-test:
    /// the campaign must record it and keep going.
    pub panic_at: Option<u64>,
    /// Campaign directory holding a crash-safe journal: seeds whose
    /// verdicts are already journaled are replayed instead of re-run, and
    /// fresh verdicts are journaled as they complete.
    pub resume_dir: Option<PathBuf>,
}

impl ChaosOpts {
    /// The journal identity for this campaign. Only verdict-determining
    /// knobs participate: the artifact directory and the resume directory
    /// itself change where results land, never what they are.
    pub fn journal_header(&self) -> JournalHeader {
        JournalHeader {
            campaign: "cs-chaos".to_string(),
            config: format!(
                "start={:#x} count={} fault={} shrink={} panic_at={}",
                self.start,
                self.count,
                self.fault.map_or("none", FaultKind::name),
                self.shrink,
                self.panic_at
                    .map_or("none".to_string(), |s| format!("{s:#x}")),
            ),
        }
    }
}

/// End-of-campaign triage summary.
#[derive(Clone, Debug, Default)]
pub struct ChaosSummary {
    /// Seeds run.
    pub seeds: u64,
    /// Seeds where every oracle held.
    pub passes: u64,
    /// Seeds with oracle violations.
    pub failures: u64,
    /// Seeds whose engine run panicked (caught, recorded, not fatal).
    pub panics: u64,
    /// Seeds replayed from the campaign journal instead of re-run.
    pub resumed: u64,
    /// Artifact directories written, one per recorded failure.
    pub artifacts: Vec<PathBuf>,
    /// One human-readable line per failure or panic.
    pub triage: Vec<String>,
}

/// Verdict for one plan under the campaign's fault setting.
fn chaos_plan_verdict(p: &SmithPlan, fault: Option<FaultKind>) -> SeedVerdict {
    match fault {
        None => fuzz::run_plan(p),
        Some(kind) => {
            let probe = probe_plan(kind, p);
            if probe.violations.is_empty() {
                SeedVerdict::Pass { squashes: 0 }
            } else {
                SeedVerdict::Fail(probe.violations)
            }
        }
    }
}

/// Cycle stride between silent cs-snap checkpoints in [`capture_events`]:
/// the replay runs unobserved up to the last checkpoint before the run
/// stops, then attaches the ring and resumes only the tail.
const CAPTURE_STRIDE: Cycle = 50_000;

/// Replays a plan with a [`RingSink`] attached and returns the event dump
/// (the run is deterministic, so the replay sees the failing execution).
///
/// The replay is two-phase: a silent pre-pass runs in
/// [`CAPTURE_STRIDE`]-cycle slices, cloning the whole system (cs-snap) at
/// the last slice boundary before the stop; the event capture then
/// resumes from that checkpoint instead of cycle 0. The ring only keeps
/// the run's tail anyway — this way the observer tax is only paid over
/// the window the artifact actually shows. Fault-injection counters are
/// rewound with the checkpoint so the tail re-fires the same faults.
fn capture_events(p: &SmithPlan, fault: Option<FaultKind>) -> String {
    let progs: Vec<Arc<Program>> = assemble_plan(p).into_iter().map(Arc::new).collect();
    let mode = SecurityMode::CleanupSpec;
    let (env, _inj) = match fault {
        Some(k) => env_for(k),
        None => (ExecEnv::default(), FaultInjector::disabled()),
    };
    let mut cfg = mode.apply_mem_config(fuzz::fuzz_mem_config(progs.len(), p.seed));
    cfg.repl_seed_salt = env.repl_seed_salt;
    if let Some(m) = env.mshrs_per_core {
        cfg.mshrs_per_core = m;
    }
    if let Some((cap, ways)) = env.l1_geometry {
        cfg.l1_capacity = cap;
        cfg.l1_ways = ways;
    }
    let mut mem = MemHierarchy::new(cfg);
    if env.faults.is_enabled() {
        mem.set_fault_injector(env.faults.clone());
    }
    let schemes: Vec<_> = (0..progs.len()).map(|_| mode.build_scheme()).collect();
    let mut sys = System::new(mem, CoreConfig::default(), schemes, progs);
    let mut limits = RunLimits {
        max_cycles: fuzz::CYCLE_CAP,
        max_insts_per_core: u64::MAX,
        ..RunLimits::default()
    };
    if let Some(wd) = env.watchdog {
        limits.watchdog = Some(wd);
    }

    // Silent pre-pass: advance slice by slice, keeping the last
    // checkpoint taken before the run stops for real.
    let mut ckpt = (sys.clone(), env.faults.counters_snapshot());
    loop {
        let mut slice = limits;
        slice.max_cycles = (sys.now() + CAPTURE_STRIDE).min(limits.max_cycles);
        let stop = sys.run(slice);
        let at_slice_boundary =
            matches!(stop, StopReason::CycleLimit) && sys.now() < limits.max_cycles;
        if !at_slice_boundary {
            break;
        }
        ckpt = (sys.clone(), env.faults.counters_snapshot());
    }

    let (mut tail, counters) = ckpt;
    let resumed_at = tail.now();
    env.faults.restore_counters(&counters);
    let ring = Shared::new(RingSink::new(RING_CAP));
    tail.set_observer(Observer::new(vec![Box::new(ring.clone())]));
    let stop = tail.run(limits);
    ring.with(|r| {
        format!(
            "; stop: {stop}\n; resumed from cs-snap checkpoint at cycle {resumed_at}\n\
             ; {} event(s) kept of {} recorded\n{}",
            r.to_vec().len(),
            r.total_recorded(),
            r.dump()
        )
    })
}

/// Writes one failure's repro artifacts under `dir` and returns the
/// artifact subdirectory: `repro.txt` (seed, fault plan, violations,
/// replay hint), `core<i>.s` (shrunk if requested), and `events.log`
/// (ring-buffer dump of the failing run; skipped for panicking seeds
/// unless the replay survives its own `catch_unwind`).
///
/// All writes go through the hardened [`ArtifactStore`] for `dir`
/// (atomic write + checksum sidecar + retry); an unwritable directory
/// degrades to in-memory artifacts with a one-line warning instead of
/// aborting the campaign, in which case the returned path will not
/// exist on disk.
pub fn write_artifacts(
    dir: &Path,
    seed: u64,
    fault: Option<FaultKind>,
    violations: &[Violation],
    do_shrink: bool,
) -> PathBuf {
    let store = shared_dir_store(dir);
    let put = |name: &str, bytes: &[u8]| {
        if let Err(e) = store.put(name, bytes) {
            eprintln!("warning: cs-chaos artifact {name} not stored: {e}");
        }
    };
    let panicked = violations.iter().any(|v| v.oracle == "panic");
    let tag = if panicked {
        "panic"
    } else {
        fault.map_or("clean", FaultKind::name)
    };
    let rel = format!("seed-{seed:#x}-{tag}");
    let sub = dir.join(&rel);
    let p = plan(seed);

    // Shrink while the failure persists. Panicking seeds are exported
    // unshrunk: re-running a crashing engine dozens of times in-process
    // is exactly what the isolation exists to avoid.
    let min = if do_shrink && !panicked {
        fuzz::shrink(&p, |cand| !chaos_plan_verdict(cand, fault).passed())
    } else {
        p.clone()
    };

    let mut repro = String::new();
    let _ = writeln!(repro, "cs-chaos repro: seed {seed:#x}");
    match fault {
        Some(k) => {
            let _ = writeln!(repro, "fault plan: {}", FaultPlan::single(k).describe());
            let _ = writeln!(repro, "  ({})", k.description());
        }
        None => {
            let _ = writeln!(repro, "fault plan: none (clean differential run)");
        }
    }
    let _ = writeln!(
        repro,
        "plan: {} op(s), {} iter(s), {} core(s){}",
        min.ops.len(),
        min.iters,
        min.cores,
        if do_shrink && !panicked {
            " [shrunk]"
        } else {
            ""
        }
    );
    for v in violations {
        let _ = writeln!(repro, "violation: {v}");
    }
    let replay_fault = fault
        .map(|k| format!(" --fault {}", k.name()))
        .unwrap_or_default();
    let _ = writeln!(repro, "replay: cs-chaos --replay {seed:#x}{replay_fault}");
    put(&format!("{rel}/repro.txt"), repro.as_bytes());

    for (i, prog) in assemble_plan(&min).iter().enumerate() {
        let asm = format!(
            "; cs-chaos seed {:#x} core {i}: {} plan ops, {} iterations, fault {}\n{}",
            min.seed,
            min.ops.len(),
            min.iters,
            fault.map_or("none", FaultKind::name),
            disassemble(prog)
        );
        put(&format!("{rel}/core{i}.s"), asm.as_bytes());
    }

    let events = std::panic::catch_unwind(|| capture_events(&min, fault));
    let dump = match events {
        Ok(dump) => dump,
        Err(payload) => format!(
            "; event replay itself panicked: {}\n",
            fuzz::panic_message(&*payload)
        ),
    };
    put(&format!("{rel}/events.log"), dump.as_bytes());
    sub
}

/// Runs a crash-isolated campaign: every seed in `catch_unwind`, panics
/// recorded as `"panic"`-oracle failures with artifacts, triage at the
/// end. With [`ChaosOpts::resume_dir`] set, journaled verdicts replay
/// instead of re-running, so a campaign killed mid-flight resumes with
/// an identical triage summary.
pub fn run_chaos_campaign(opts: &ChaosOpts) -> ChaosSummary {
    let journal = opts.resume_dir.as_deref().and_then(|dir| {
        let store = shared_dir_store(dir) as Arc<dyn ArtifactStore>;
        match Journal::open(store, &opts.journal_header()) {
            Ok(j) => Some(j),
            Err(e) => {
                eprintln!("warning: cs-chaos running without a journal: {e}");
                None
            }
        }
    });
    let mut sum = ChaosSummary::default();
    for seed in opts.start..opts.start.saturating_add(opts.count) {
        sum.seeds += 1;
        let task_id = format!("seed-{seed:#x}");
        let replayed = journal
            .as_ref()
            .and_then(|j| j.completed(&task_id))
            .and_then(|payload| match fuzz::verdict_from_json(&payload) {
                Ok(v) => Some(v),
                Err(e) => {
                    eprintln!("warning: re-running {task_id}: journaled verdict unusable ({e})");
                    None
                }
            });
        let resumed = replayed.is_some();
        let verdict = replayed.unwrap_or_else(|| {
            let fault = opts.fault;
            let planted = opts.panic_at == Some(seed);
            let v = match std::panic::catch_unwind(move || {
                if planted {
                    panic!("cs-chaos planted panic (isolation self-test) at seed {seed:#x}");
                }
                chaos_plan_verdict(&plan(seed), fault)
            }) {
                Ok(v) => v,
                Err(payload) => SeedVerdict::Fail(vec![Violation {
                    seed,
                    scheme: "(crashed)",
                    oracle: "panic",
                    detail: fuzz::panic_message(&*payload),
                }]),
            };
            if let Some(j) = &journal {
                j.record(&task_id, &fuzz::verdict_to_json(&v));
            }
            v
        });
        sum.resumed += u64::from(resumed);
        let violations = match verdict {
            SeedVerdict::Pass { .. } => {
                sum.passes += 1;
                continue;
            }
            SeedVerdict::Fail(vs) => {
                // A `"panic"` oracle only ever comes from the isolation
                // net, so this split preserves the pre-journal counters.
                if vs.iter().any(|v| v.oracle == "panic") {
                    sum.panics += 1;
                } else {
                    sum.failures += 1;
                }
                vs
            }
        };
        sum.triage
            .push(format!("seed {seed:#x}: {}", violations[0]));
        if let Some(dir) = &opts.artifact_dir {
            if resumed {
                // The original run already exported artifacts; point at
                // them without re-running the failing engine.
                let panicked = violations.iter().any(|v| v.oracle == "panic");
                let tag = if panicked {
                    "panic"
                } else {
                    opts.fault.map_or("clean", FaultKind::name)
                };
                let sub = dir.join(format!("seed-{seed:#x}-{tag}"));
                if sub.exists() {
                    sum.artifacts.push(sub);
                }
            } else {
                sum.artifacts.push(write_artifacts(
                    dir,
                    seed,
                    opts.fault,
                    &violations,
                    opts.shrink,
                ));
            }
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_victim_restore_is_detected_within_a_few_seeds() {
        let row = scan_fault(FaultKind::SkipVictimRestore, 0, 16);
        let p = row.probe.expect("skip-victim-restore never detected");
        assert!(p.fires > 0);
        assert!(
            p.detectors.contains(&"audit"),
            "expected the leakage audit to flag the missing restore, got {:?}",
            p.detectors
        );
    }

    /// Every fault class that corrupts *undo state* (as opposed to
    /// starving resources, biasing randomness, or skewing indexing) must
    /// be caught by the episode detector — i.e. produce at least one
    /// `EpisodeLeak` pinned to a cleanup episode, not just global residue.
    #[test]
    fn undo_corrupting_faults_are_flagged_at_episode_granularity() {
        // (kind, seed-scan budget). Most classes trip within a handful of
        // seeds; early-coherence-downgrade needs remote M ownership to
        // line up with a wrong-path load and historically first fires
        // around seed 0xac, hence the wider budget.
        let undo_faults = [
            (FaultKind::SkipVictimRestore, 16),
            (FaultKind::SkipTransientInvalidate, 16),
            (FaultKind::DoubleUndo, 16),
            (FaultKind::DropSefeEntry, 16),
            (FaultKind::EarlyCoherenceDowngrade, 192),
        ];
        for (kind, budget) in undo_faults {
            let caught = (0..budget).map(|s| probe_fault(kind, s)).any(|p| {
                p.fires > 0
                    && p.detectors.contains(&"episode")
                    && p.violations.iter().any(|v| v.oracle == "episode")
            });
            assert!(
                caught,
                "{}: no seed in 0..{budget} produced an episode-ledger finding",
                kind.name()
            );
        }
    }

    #[test]
    fn planted_panic_is_isolated_and_leaves_artifacts() {
        let dir = std::env::temp_dir().join(format!("cs-chaos-selftest-{}", std::process::id()));
        let opts = ChaosOpts {
            start: 0,
            count: 3,
            fault: None,
            artifact_dir: Some(dir.clone()),
            shrink: false,
            panic_at: Some(1),
            resume_dir: None,
        };
        let sum = run_chaos_campaign(&opts);
        assert_eq!(sum.seeds, 3, "campaign must survive the planted panic");
        assert_eq!(sum.panics, 1);
        assert_eq!(sum.artifacts.len(), 1);
        let repro =
            std::fs::read_to_string(sum.artifacts[0].join("repro.txt")).expect("repro.txt written");
        assert!(repro.contains("planted panic"), "repro: {repro}");
        assert!(sum.artifacts[0].join("core0.s").exists());
        assert!(sum.artifacts[0].join("events.log").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journaled_campaign_resumes_with_identical_triage() {
        let dir = std::env::temp_dir().join(format!("cs-chaos-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = ChaosOpts {
            start: 0,
            count: 3,
            fault: None,
            artifact_dir: None,
            shrink: false,
            panic_at: Some(1),
            resume_dir: Some(dir.clone()),
        };
        let first = run_chaos_campaign(&opts);
        assert_eq!(first.resumed, 0);
        assert_eq!(first.panics, 1);
        // Second run over the same journal: every verdict replays, the
        // planted panic is *not* re-triggered, and triage is identical.
        let second = run_chaos_campaign(&opts);
        assert_eq!(second.resumed, 3);
        assert_eq!(second.seeds, first.seeds);
        assert_eq!(second.passes, first.passes);
        assert_eq!(second.failures, first.failures);
        assert_eq!(second.panics, first.panics);
        assert_eq!(second.triage, first.triage);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
