//! Minimal SVG chart rendering for the experiment harness — bar charts
//! (Figure 12/13-style), stacked bars (Figure 14), and scatter/line series
//! (Figure 11) — with no external dependencies.
//!
//! Set `CLEANUPSPEC_SVG_DIR` to make the experiment binaries write `.svg`
//! files next to their textual output.

use std::fmt::Write as _;

const WIDTH: f64 = 860.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 90.0;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn header(title: &str) -> String {
    format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">
<rect width="100%" height="100%" fill="white"/>
<text x="{x}" y="24" font-family="sans-serif" font-size="16" text-anchor="middle" font-weight="bold">{t}</text>
"#,
        x = WIDTH / 2.0,
        t = esc(title)
    )
}

fn axis(max_y: f64, y_label: &str) -> String {
    let mut s = String::new();
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let _ = writeln!(
        s,
        r#"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{y0}" stroke="black"/>
<line x1="{MARGIN_L}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="black"/>"#,
        y0 = HEIGHT - MARGIN_B,
        x1 = WIDTH - MARGIN_R,
    );
    // 5 horizontal gridlines + labels.
    for k in 0..=5 {
        let v = max_y * k as f64 / 5.0;
        let y = HEIGHT - MARGIN_B - plot_h * k as f64 / 5.0;
        let _ = writeln!(
            s,
            r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{x1}" y2="{y:.1}" stroke="#ddd"/>
<text x="{lx}" y="{ty:.1}" font-family="sans-serif" font-size="11" text-anchor="end">{v:.2}</text>"##,
            x1 = WIDTH - MARGIN_R,
            lx = MARGIN_L - 6.0,
            ty = y + 4.0,
        );
    }
    let _ = writeln!(
        s,
        r#"<text x="16" y="{cy}" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 {cy})">{l}</text>"#,
        cy = MARGIN_T + plot_h / 2.0,
        l = esc(y_label),
    );
    s
}

/// One bar: label + one or more stacked segment values.
#[derive(Clone, Debug)]
pub struct Bar {
    /// X-axis label.
    pub label: String,
    /// Stacked segment values, bottom-up. One entry = plain bar.
    pub segments: Vec<f64>,
}

/// A (possibly stacked) bar chart.
#[derive(Clone, Debug)]
pub struct BarChart {
    /// Chart title.
    pub title: String,
    /// Y-axis label.
    pub y_label: String,
    /// Bars, left to right.
    pub bars: Vec<Bar>,
    /// Legend entries matching segment indices (empty for plain bars).
    pub segment_names: Vec<String>,
    /// Optional horizontal reference line (e.g. the baseline at 1.0).
    pub reference: Option<f64>,
}

const PALETTE: [&str; 4] = ["#4878cf", "#ee854a", "#6acc65", "#d65f5f"];

impl BarChart {
    /// Renders the chart as an SVG document.
    pub fn render(&self) -> String {
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let max_y = self
            .bars
            .iter()
            .map(|b| b.segments.iter().sum::<f64>())
            .fold(self.reference.unwrap_or(0.0), f64::max)
            .max(1e-9)
            * 1.08;
        let mut s = header(&self.title);
        s.push_str(&axis(max_y, &self.y_label));
        let n = self.bars.len().max(1) as f64;
        let slot = plot_w / n;
        let bw = (slot * 0.65).min(48.0);
        for (i, bar) in self.bars.iter().enumerate() {
            let x = MARGIN_L + slot * (i as f64 + 0.5) - bw / 2.0;
            let mut y = HEIGHT - MARGIN_B;
            for (k, v) in bar.segments.iter().enumerate() {
                let h = (v / max_y) * plot_h;
                y -= h;
                let _ = writeln!(
                    s,
                    r#"<rect x="{x:.1}" y="{y:.1}" width="{bw:.1}" height="{h:.1}" fill="{c}" stroke="black" stroke-width="0.4"/>"#,
                    c = PALETTE[k % PALETTE.len()],
                );
            }
            let _ = writeln!(
                s,
                r#"<text x="{cx:.1}" y="{ly:.1}" font-family="sans-serif" font-size="11" text-anchor="end" transform="rotate(-45 {cx:.1} {ly:.1})">{l}</text>"#,
                cx = x + bw / 2.0,
                ly = HEIGHT - MARGIN_B + 14.0,
                l = esc(&bar.label),
            );
        }
        if let Some(r) = self.reference {
            let y = HEIGHT - MARGIN_B - (r / max_y) * plot_h;
            let _ = writeln!(
                s,
                r#"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{x1}" y2="{y:.1}" stroke="black" stroke-dasharray="6 3"/>"#,
                x1 = WIDTH - MARGIN_R,
            );
        }
        for (k, name) in self.segment_names.iter().enumerate() {
            let lx = MARGIN_L + 10.0 + 150.0 * k as f64;
            let _ = writeln!(
                s,
                r#"<rect x="{lx}" y="{ly}" width="12" height="12" fill="{c}"/>
<text x="{tx}" y="{ty}" font-family="sans-serif" font-size="12">{n}</text>"#,
                ly = MARGIN_T - 8.0,
                c = PALETTE[k % PALETTE.len()],
                tx = lx + 16.0,
                ty = MARGIN_T + 3.0,
                n = esc(name),
            );
        }
        s.push_str("</svg>\n");
        s
    }
}

/// One scatter/line series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend name.
    pub name: String,
    /// (x, y) points.
    pub points: Vec<(f64, f64)>,
}

/// A multi-series scatter/line chart (Figure 11 style).
#[derive(Clone, Debug)]
pub struct LineChart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl LineChart {
    /// Renders the chart as an SVG document.
    pub fn render(&self) -> String {
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let max_x = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .fold(1e-9, f64::max);
        let max_y = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.1))
            .fold(1e-9, f64::max)
            * 1.08;
        let mut s = header(&self.title);
        s.push_str(&axis(max_y, &self.y_label));
        let px = |x: f64| MARGIN_L + (x / max_x) * plot_w;
        let py = |y: f64| HEIGHT - MARGIN_B - (y / max_y) * plot_h;
        for (k, ser) in self.series.iter().enumerate() {
            let color = PALETTE[k % PALETTE.len()];
            let mut path = String::new();
            for (j, (x, y)) in ser.points.iter().enumerate() {
                let _ = write!(
                    path,
                    "{}{:.1} {:.1} ",
                    if j == 0 { "M" } else { "L" },
                    px(*x),
                    py(*y)
                );
            }
            let _ = writeln!(
                s,
                r#"<path d="{path}" fill="none" stroke="{color}" stroke-width="1.4"/>"#
            );
            for (x, y) in &ser.points {
                let _ = writeln!(
                    s,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="2.4" fill="{color}"/>"#,
                    px(*x),
                    py(*y)
                );
            }
            let lx = MARGIN_L + 10.0 + 220.0 * k as f64;
            let _ = writeln!(
                s,
                r#"<rect x="{lx}" y="{ly}" width="12" height="12" fill="{color}"/>
<text x="{tx}" y="{ty}" font-family="sans-serif" font-size="12">{n}</text>"#,
                ly = MARGIN_T - 8.0,
                tx = lx + 16.0,
                ty = MARGIN_T + 3.0,
                n = esc(&ser.name),
            );
        }
        let _ = writeln!(
            s,
            r#"<text x="{cx}" y="{cy}" font-family="sans-serif" font-size="12" text-anchor="middle">{l}</text>"#,
            cx = MARGIN_L + plot_w / 2.0,
            cy = HEIGHT - 8.0,
            l = esc(&self.x_label),
        );
        s.push_str("</svg>\n");
        s
    }
}

/// Writes a rendered chart into `$CLEANUPSPEC_SVG_DIR/<name>.svg`, if the
/// environment variable is set. Returns the path written.
pub fn maybe_write(name: &str, svg: &str) -> Option<std::path::PathBuf> {
    let dir = std::env::var_os("CLEANUPSPEC_SVG_DIR")?;
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("{name}.svg"));
    std::fs::write(&path, svg).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> BarChart {
        BarChart {
            title: "Test <chart>".into(),
            y_label: "norm. time".into(),
            bars: vec![
                Bar {
                    label: "astar".into(),
                    segments: vec![1.1],
                },
                Bar {
                    label: "libq".into(),
                    segments: vec![1.01],
                },
            ],
            segment_names: vec![],
            reference: Some(1.0),
        }
    }

    #[test]
    fn bar_chart_is_valid_svg_shell() {
        let svg = chart().render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 3, "bg + 2 bars");
        assert!(svg.contains("astar"));
        assert!(svg.contains("stroke-dasharray"), "reference line drawn");
        assert!(svg.contains("&lt;chart&gt;"), "title escaped");
    }

    #[test]
    fn stacked_bars_emit_one_rect_per_segment() {
        let mut c = chart();
        c.bars = vec![Bar {
            label: "x".into(),
            segments: vec![1.0, 2.0, 3.0],
        }];
        c.segment_names = vec!["a".into(), "b".into(), "c".into()];
        let svg = c.render();
        // bg + 3 segments + 3 legend swatches.
        assert_eq!(svg.matches("<rect").count(), 7);
    }

    #[test]
    fn line_chart_renders_series() {
        let svg = LineChart {
            title: "lat".into(),
            x_label: "index".into(),
            y_label: "cycles".into(),
            series: vec![
                Series {
                    name: "non-secure".into(),
                    points: (0..10).map(|i| (i as f64, 100.0 + i as f64)).collect(),
                },
                Series {
                    name: "cleanupspec".into(),
                    points: (0..10).map(|i| (i as f64, 110.0)).collect(),
                },
            ],
        }
        .render();
        assert_eq!(svg.matches("<path").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 20);
        assert!(svg.contains("cleanupspec"));
    }

    #[test]
    fn maybe_write_is_noop_without_env() {
        std::env::remove_var("CLEANUPSPEC_SVG_DIR");
        assert!(maybe_write("x", "<svg></svg>").is_none());
    }

    #[test]
    fn empty_chart_does_not_panic() {
        let c = BarChart {
            title: "empty".into(),
            y_label: "".into(),
            bars: vec![],
            segment_names: vec![],
            reference: None,
        };
        let svg = c.render();
        assert!(svg.contains("</svg>"));
    }
}
