//! Shared target resolution for the `cs-*` binaries.
//!
//! `cs-trace` and `cs-report` take the same positional argument: a
//! micro-ISA `.s` file (assembled on the fly) or a named workload — a
//! Table-3 SPEC-like workload (`gcc`, `astar`, ...), `spectre_v1`,
//! `meltdown`, `mispredict_storm`, or `smith:<seed>` (the fuzzer's
//! squash-heavy multi-core plan for that seed). This module owns the
//! lookup so both binaries accept exactly the same spellings.

use cleanupspec_asm::assemble;
use cleanupspec_core::isa::Program;
use cleanupspec_workloads::attacks::{
    meltdown_program, spectre_v1_program, MeltdownConfig, SpectreConfig,
};
use cleanupspec_workloads::micro::mispredict_storm;
use cleanupspec_workloads::smith::{assemble_plan, plan};
use cleanupspec_workloads::spec::spec_workload;

/// One help line describing the accepted targets.
pub const TARGET_HELP: &str =
    "targets: a .s file, any Table-3 name (gcc, astar, ...), spectre_v1, meltdown, \
     mispredict_storm, smith:<seed>";

/// Resolves a positional argument to one program per core. `.s` paths are
/// assembled; `smith:<seed>` expands to the fuzzer plan's full program
/// set; everything else is a single-program named workload.
pub fn resolve_programs(target: &str, seed: u64) -> Result<Vec<Program>, String> {
    if target.ends_with(".s") {
        let src =
            std::fs::read_to_string(target).map_err(|e| format!("cannot read {target}: {e}"))?;
        return assemble(target, &src)
            .map(|p| vec![p])
            .map_err(|e| format!("{target}:{e}"));
    }
    if let Some(s) = target.strip_prefix("smith:") {
        let seed: u64 = s
            .parse()
            .map_err(|_| format!("smith:<seed> needs a number, got {s:?}"))?;
        return Ok(assemble_plan(&plan(seed)));
    }
    if let Some(w) = spec_workload(target) {
        return Ok(vec![w.build(seed ^ cleanupspec_mem::rng::mix_str(w.name))]);
    }
    match target {
        "spectre_v1" => Ok(vec![spectre_v1_program(&SpectreConfig::default())]),
        "meltdown" => Ok(vec![meltdown_program(&MeltdownConfig::default())]),
        "mispredict_storm" => Ok(vec![mispredict_storm(2_000, 3, seed)]),
        _ => Err(format!("unknown workload or file: {target}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_workloads_resolve() {
        for name in ["gcc", "spectre_v1", "meltdown", "mispredict_storm"] {
            assert!(resolve_programs(name, 1).is_ok(), "{name} did not resolve");
        }
    }

    #[test]
    fn smith_targets_expand_to_the_full_plan() {
        let progs = resolve_programs("smith:7", 1).unwrap();
        assert!(!progs.is_empty());
        // The seed in the target name wins over --seed: same spelling,
        // same plan, regardless of harness defaults.
        assert_eq!(progs.len(), resolve_programs("smith:7", 99).unwrap().len());
        assert!(resolve_programs("smith:x", 1).is_err());
    }

    #[test]
    fn unknown_target_is_an_error() {
        let err = resolve_programs("no-such-workload", 1).unwrap_err();
        assert!(err.contains("no-such-workload"));
    }

    #[test]
    fn missing_asm_file_reports_the_path() {
        let err = resolve_programs("/nonexistent/x.s", 1).unwrap_err();
        assert!(err.contains("/nonexistent/x.s"));
    }
}
