//! Shared CLI flag parsing for the `cs-*` binaries.
//!
//! Every harness binary (`cs-bench`, `cs-smith`, `cs-chaos`, `cs-trace`)
//! used to hand-roll the same flags with drifting spellings, number
//! parsers, and defaults (`--threads` was hex-capable in cs-smith but
//! not cs-bench; thread defaults disagreed between binaries). This
//! module owns the shared surface:
//!
//! * [`parse_u64`]/[`parse_usize`] accept decimal or `0x` hex everywhere;
//! * [`CommonCli`] parses the flags a binary opts into (`--insts`,
//!   `--seed`, `--threads`, `--ring-capacity`, `--checkpoint-dir`,
//!   `--seeds`, `--start`) with one spelling and one help-text format;
//! * resolved defaults come from one place: threads from
//!   [`crate::exec::default_threads`] (honoring `CLEANUPSPEC_THREADS`),
//!   the checkpoint directory from `CLEANUPSPEC_CHECKPOINT_DIR`.

use crate::exec::default_threads;
use crate::runner::checkpoint_dir_from_env;
use std::path::PathBuf;

/// Default base seed shared by every harness.
pub const DEFAULT_SEED: u64 = 0xC1EA_2019;

/// Default event-ring capacity shared by cs-bench and cs-trace.
pub const DEFAULT_RING_CAPACITY: usize = 100_000;

/// Parses a `u64` in decimal or `0x`-prefixed hex.
pub fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Parses a `usize` in decimal or `0x`-prefixed hex.
pub fn parse_usize(s: &str) -> Option<usize> {
    parse_u64(s).and_then(|n| usize::try_from(n).ok())
}

/// One shared flag the binaries can opt into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Flag {
    Insts,
    Seed,
    Threads,
    RingCapacity,
    CheckpointDir,
    Seeds,
    Start,
    Resume,
}

impl Flag {
    fn spelling(self) -> &'static str {
        match self {
            Flag::Insts => "--insts",
            Flag::Seed => "--seed",
            Flag::Threads => "--threads",
            Flag::RingCapacity => "--ring-capacity",
            Flag::CheckpointDir => "--checkpoint-dir",
            Flag::Seeds => "--seeds",
            Flag::Start => "--start",
            Flag::Resume => "--resume",
        }
    }

    fn help(self) -> &'static str {
        match self {
            Flag::Insts => "committed instructions per run (decimal or 0x hex)",
            Flag::Seed => "base seed, mixed per workload (default 0xC1EA2019)",
            Flag::Threads => "worker threads (default: CLEANUPSPEC_THREADS, else host parallelism)",
            Flag::RingCapacity => "event ring capacity (default 100000)",
            Flag::CheckpointDir => "cs-snap result cache (default: CLEANUPSPEC_CHECKPOINT_DIR)",
            Flag::Seeds => "number of seeds to run",
            Flag::Start => "first seed of the range",
            Flag::Resume => "campaign dir with a crash-safe journal; completed tasks are skipped",
        }
    }
}

/// Parser for the shared flags a binary opts into. Use the `with_*`
/// builder methods to enable flags, then call [`CommonCli::accept`] from
/// the argv loop; unrecognized flags return `Ok(false)` so the binary
/// can try its own specific flags next.
#[derive(Debug, Default)]
pub struct CommonCli {
    enabled: Vec<Flag>,
    /// `--insts`, if given.
    pub insts: Option<u64>,
    /// `--seed`, if given.
    pub seed: Option<u64>,
    /// `--threads`, if given.
    pub threads: Option<usize>,
    /// `--ring-capacity`, if given.
    pub ring_capacity: Option<usize>,
    /// `--checkpoint-dir`, if given.
    pub checkpoint_dir: Option<PathBuf>,
    /// `--seeds`, if given.
    pub seeds: Option<u64>,
    /// `--start`, if given.
    pub start: Option<u64>,
    /// `--resume`, if given.
    pub resume: Option<PathBuf>,
}

impl CommonCli {
    /// A parser with no shared flags enabled yet.
    pub fn new() -> Self {
        CommonCli::default()
    }

    fn enable(mut self, flag: Flag) -> Self {
        self.enabled.push(flag);
        self
    }

    /// Enables `--insts`.
    pub fn with_insts(self) -> Self {
        self.enable(Flag::Insts)
    }

    /// Enables `--seed`.
    pub fn with_seed(self) -> Self {
        self.enable(Flag::Seed)
    }

    /// Enables `--threads`.
    pub fn with_threads(self) -> Self {
        self.enable(Flag::Threads)
    }

    /// Enables `--ring-capacity`.
    pub fn with_ring_capacity(self) -> Self {
        self.enable(Flag::RingCapacity)
    }

    /// Enables `--checkpoint-dir`.
    pub fn with_checkpoint_dir(self) -> Self {
        self.enable(Flag::CheckpointDir)
    }

    /// Enables `--seeds`.
    pub fn with_seeds(self) -> Self {
        self.enable(Flag::Seeds)
    }

    /// Enables `--start`.
    pub fn with_start(self) -> Self {
        self.enable(Flag::Start)
    }

    /// Enables `--resume`.
    pub fn with_resume(self) -> Self {
        self.enable(Flag::Resume)
    }

    /// Tries to consume `flag` (and its value from `it`). `Ok(true)`
    /// means the flag was one of the enabled shared flags and was
    /// consumed; `Ok(false)` means it is not a shared flag (the caller
    /// should try its binary-specific flags); `Err` carries a message
    /// for a shared flag with a missing or malformed value.
    pub fn accept<'a, I>(&mut self, flag: &str, it: &mut I) -> Result<bool, String>
    where
        I: Iterator<Item = &'a String>,
    {
        let Some(&f) = self.enabled.iter().find(|f| f.spelling() == flag) else {
            return Ok(false);
        };
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))?;
        let bad = || format!("{flag}: invalid value {value:?}");
        match f {
            Flag::Insts => self.insts = Some(parse_u64(value).ok_or_else(bad)?),
            Flag::Seed => self.seed = Some(parse_u64(value).ok_or_else(bad)?),
            Flag::Threads => {
                let n = parse_usize(value).filter(|&n| n > 0).ok_or_else(bad)?;
                self.threads = Some(n);
            }
            Flag::RingCapacity => self.ring_capacity = Some(parse_usize(value).ok_or_else(bad)?),
            Flag::CheckpointDir => self.checkpoint_dir = Some(PathBuf::from(value)),
            Flag::Seeds => self.seeds = Some(parse_u64(value).ok_or_else(bad)?),
            Flag::Start => self.start = Some(parse_u64(value).ok_or_else(bad)?),
            Flag::Resume => self.resume = Some(PathBuf::from(value)),
        }
        Ok(true)
    }

    /// The shared help block for the enabled flags, one line per flag in
    /// the same format across every binary.
    pub fn help(&self) -> String {
        let mut out = String::from("common flags:");
        for f in &self.enabled {
            out.push_str(&format!("\n  {:<18} {}", f.spelling(), f.help()));
        }
        out
    }

    /// `--threads` or the shared default ([`default_threads`]).
    pub fn threads_or_default(&self) -> usize {
        self.threads.unwrap_or_else(default_threads)
    }

    /// `--seed` or [`DEFAULT_SEED`].
    pub fn seed_or_default(&self) -> u64 {
        self.seed.unwrap_or(DEFAULT_SEED)
    }

    /// `--ring-capacity` or [`DEFAULT_RING_CAPACITY`].
    pub fn ring_capacity_or_default(&self) -> usize {
        self.ring_capacity.unwrap_or(DEFAULT_RING_CAPACITY)
    }

    /// `--seeds` or `default`.
    pub fn seeds_or(&self, default: u64) -> u64 {
        self.seeds.unwrap_or(default)
    }

    /// `--start` or 0.
    pub fn start_or_default(&self) -> u64 {
        self.start.unwrap_or(0)
    }

    /// `--checkpoint-dir`, falling back to `CLEANUPSPEC_CHECKPOINT_DIR`.
    pub fn checkpoint_dir_or_env(&self) -> Option<PathBuf> {
        self.checkpoint_dir.clone().or_else(checkpoint_dir_from_env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn numbers_accept_decimal_and_hex_everywhere() {
        assert_eq!(parse_u64("42"), Some(42));
        assert_eq!(parse_u64("0x2a"), Some(42));
        assert_eq!(parse_u64("zzz"), None);
        assert_eq!(parse_usize("0x10"), Some(16));
    }

    #[test]
    fn accept_consumes_enabled_flags_only() {
        let mut cli = CommonCli::new().with_threads().with_seed();
        let args = argv(&["--threads", "0x8", "--seed", "7", "--insts", "5"]);
        let mut it = args.iter();
        assert_eq!(cli.accept(it.next().unwrap(), &mut it), Ok(true));
        assert_eq!(cli.accept(it.next().unwrap(), &mut it), Ok(true));
        // --insts is not enabled here: the caller gets it back.
        assert_eq!(cli.accept(it.next().unwrap(), &mut it), Ok(false));
        assert_eq!(cli.threads, Some(8));
        assert_eq!(cli.seed, Some(7));
        assert_eq!(cli.insts, None);
    }

    #[test]
    fn bad_or_missing_values_are_errors_not_silent_defaults() {
        let mut cli = CommonCli::new().with_threads();
        let args = argv(&["--threads", "zero"]);
        let mut it = args.iter();
        assert!(cli.accept(it.next().unwrap(), &mut it).is_err());
        let args = argv(&["--threads"]);
        let mut it = args.iter();
        assert!(cli.accept(it.next().unwrap(), &mut it).is_err());
        // Zero threads would deadlock the pool: rejected at parse time.
        let args = argv(&["--threads", "0"]);
        let mut it = args.iter();
        assert!(cli.accept(it.next().unwrap(), &mut it).is_err());
    }

    #[test]
    fn help_lists_exactly_the_enabled_flags() {
        let cli = CommonCli::new().with_insts().with_checkpoint_dir();
        let help = cli.help();
        assert!(help.contains("--insts"));
        assert!(help.contains("--checkpoint-dir"));
        assert!(!help.contains("--ring-capacity"));
    }

    #[test]
    fn resolved_defaults_come_from_the_shared_sources() {
        let cli = CommonCli::new();
        assert_eq!(cli.seed_or_default(), 0xC1EA_2019);
        assert_eq!(cli.ring_capacity_or_default(), 100_000);
        assert!(cli.threads_or_default() > 0);
        assert_eq!(cli.seeds_or(500), 500);
        assert_eq!(cli.start_or_default(), 0);
    }
}
