//! Shared experiment runner: executes calibrated workloads under security
//! modes and collects [`SimReport`]s. Workloads run in parallel threads
//! (each simulation is independent and deterministic per seed).

use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::{SimBuilder, SimReport};
use cleanupspec::snap::{read_checkpoint, write_checkpoint, CheckpointKey};
use cleanupspec_workloads::spec::{SpecWorkload, SPEC_WORKLOADS};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::thread;

/// Experiment sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// Committed instructions simulated per workload (the paper runs 500M
    /// on gem5; the default here keeps a full 19-workload sweep under a
    /// minute while past the warm-up regime).
    pub insts: u64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for the sweep.
    pub threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            insts: std::env::var("CLEANUPSPEC_INSTS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(300_000),
            seed: 0xC1EA_2019,
            threads: thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

impl ExperimentConfig {
    /// A reduced configuration for Criterion benches and smoke tests.
    pub fn quick() -> Self {
        ExperimentConfig {
            insts: 40_000,
            ..ExperimentConfig::default()
        }
    }
}

/// Warmup sizing shared by every harness: a quarter of the measured
/// region, floored at 10k so tiny runs still warm the predictor, capped
/// at 100k so huge runs don't over-warm — but never MORE than a quarter
/// of the run, so `--insts 4000` does not warm 10k and measure 4k from
/// a fully-primed state the real sweep never sees.
pub fn warmup_insts(insts: u64) -> u64 {
    (insts / 4).clamp(10_000, 100_000).min(insts / 4)
}

/// Directory for the cs-snap result cache, from `CLEANUPSPEC_CHECKPOINT_DIR`.
/// Figure binaries spawned by `repro_all --checkpoint-dir` inherit it.
pub fn checkpoint_dir_from_env() -> Option<PathBuf> {
    std::env::var_os("CLEANUPSPEC_CHECKPOINT_DIR")
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// The cache key identifying one `(workload, mode, sizing, seed)` run.
pub fn checkpoint_key(
    w: &SpecWorkload,
    mode: SecurityMode,
    cfg: &ExperimentConfig,
) -> CheckpointKey {
    CheckpointKey {
        workload: w.name.to_string(),
        mode,
        insts: cfg.insts,
        seed: cfg.seed,
        warmup: warmup_insts(cfg.insts),
    }
}

/// Looks `key` up in the on-disk cs-snap cache. Corrupt or mismatched
/// files are ignored (and reported) rather than trusted.
pub fn load_checkpoint(dir: &Path, key: &CheckpointKey) -> Option<SimReport> {
    let path = dir.join(key.file_name());
    let text = std::fs::read_to_string(&path).ok()?;
    match read_checkpoint(&text, key) {
        Ok(report) => Some(report),
        Err(e) => {
            eprintln!("warning: ignoring checkpoint {}: {e}", path.display());
            None
        }
    }
}

/// Writes `report` into the cache, atomically (write + rename) so a
/// concurrent reader never sees a half-written file. Unsuccessful runs
/// are not cacheable and are silently skipped.
pub fn store_checkpoint(dir: &Path, key: &CheckpointKey, report: &SimReport) {
    let Some(text) = write_checkpoint(key, report) else {
        return;
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!(
            "warning: cannot create checkpoint dir {}: {e}",
            dir.display()
        );
        return;
    }
    let path = dir.join(key.file_name());
    let tmp = dir.join(format!(".{}.tmp-{}", key.file_name(), std::process::id()));
    let ok = std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, &path));
    if let Err(e) = ok {
        let _ = std::fs::remove_file(&tmp);
        eprintln!("warning: cannot write checkpoint {}: {e}", path.display());
    }
}

/// Runs one Table-3 workload under `mode` and returns its report.
pub fn run_spec_workload(
    w: &SpecWorkload,
    mode: SecurityMode,
    cfg: &ExperimentConfig,
) -> SimReport {
    run_spec_workload_checkpointed(w, mode, cfg, checkpoint_dir_from_env().as_deref()).0
}

/// [`run_spec_workload`] with an explicit cache directory. Returns the
/// report and whether it was served from the cache (no simulation ran).
pub fn run_spec_workload_checkpointed(
    w: &SpecWorkload,
    mode: SecurityMode,
    cfg: &ExperimentConfig,
    checkpoint_dir: Option<&Path>,
) -> (SimReport, bool) {
    let key = checkpoint_key(w, mode, cfg);
    if let Some(dir) = checkpoint_dir {
        if let Some(report) = load_checkpoint(dir, &key) {
            return (report, true);
        }
    }
    // Mix the FULL workload name into the seed: hashing only the first
    // byte made e.g. "gcc" and "gap" share a program-generation stream.
    let program = w.build(cfg.seed ^ cleanupspec_mem::rng::mix_str(w.name));
    let mut sim = SimBuilder::new(mode)
        .program(program)
        // Mix the name into the *sim* seed too: otherwise all 19 workloads
        // share one L1 random-replacement stream and one CEASER key.
        .seed(cfg.seed ^ cleanupspec_mem::rng::mix_str(w.name))
        .build();
    // Warm caches/predictor, reset statistics, then measure.
    sim.run_with_warmup(warmup_insts(cfg.insts), cfg.insts);
    let report = sim.report();
    // A truncated run (cycle-limit exhaustion, livelock) must not pose as
    // a measurement: its IPC and traffic numbers describe a different
    // experiment than the table claims.
    if let Some(stop) = report.stop.as_ref().filter(|s| !s.is_success()) {
        eprintln!(
            "warning: workload {} under {} stopped early ({stop}); report is truncated",
            w.name,
            mode.name()
        );
    }
    if let Some(dir) = checkpoint_dir {
        store_checkpoint(dir, &key, &report);
    }
    (report, false)
}

/// Runs all 19 workloads under `mode`, in parallel. Results are returned
/// in Table-3 order.
pub fn run_all_spec(mode: SecurityMode, cfg: &ExperimentConfig) -> Vec<(SpecWorkload, SimReport)> {
    run_selected_spec(&SPEC_WORKLOADS, mode, cfg)
}

/// Runs a subset of workloads under `mode`, in parallel, preserving order.
///
/// A panic inside one workload's simulation no longer sinks the whole
/// sweep: each workload runs under [`catch_unwind`], panicked workloads
/// are reported by name on stderr, and the surviving reports are
/// returned (still in input order). Callers that need the sweep to be
/// complete should compare lengths or pair results by workload name.
pub fn run_selected_spec(
    workloads: &[SpecWorkload],
    mode: SecurityMode,
    cfg: &ExperimentConfig,
) -> Vec<(SpecWorkload, SimReport)> {
    let (ok, failed) = run_selected_spec_partial(workloads, mode, cfg);
    if !failed.is_empty() {
        eprintln!(
            "warning: {} workload(s) panicked under {} and were dropped from the sweep: {}",
            failed.len(),
            mode.name(),
            failed.join(", ")
        );
    }
    ok
}

/// [`run_selected_spec`] returning the surviving `(workload, report)`
/// pairs plus the names of workloads whose simulation panicked.
pub fn run_selected_spec_partial(
    workloads: &[SpecWorkload],
    mode: SecurityMode,
    cfg: &ExperimentConfig,
) -> (Vec<(SpecWorkload, SimReport)>, Vec<String>) {
    sweep_isolated(workloads, cfg.threads, |w| run_spec_workload(w, mode, cfg))
}

/// Parallel per-workload sweep with crash isolation: `run` executes
/// under [`catch_unwind`] so one panicking workload costs only its own
/// slot, not the whole sweep. Order of survivors matches input order.
pub fn sweep_isolated<F>(
    workloads: &[SpecWorkload],
    threads: usize,
    run: F,
) -> (Vec<(SpecWorkload, SimReport)>, Vec<String>)
where
    F: Fn(&SpecWorkload) -> SimReport + Sync,
{
    let chunk = workloads.len().div_ceil(threads.max(1));
    let mut out: Vec<Option<Option<(SpecWorkload, SimReport)>>> = vec![None; workloads.len()];
    let run = &run;
    thread::scope(|s| {
        let mut handles = Vec::new();
        for (ci, ws) in workloads.chunks(chunk).enumerate() {
            handles.push((
                ci * chunk,
                s.spawn(move || {
                    ws.iter()
                        .map(|w| {
                            // The simulator is freshly built per workload, so
                            // a panic cannot leave shared state torn.
                            catch_unwind(AssertUnwindSafe(|| (*w, run(w)))).ok()
                        })
                        .collect::<Vec<_>>()
                }),
            ));
        }
        for (base, h) in handles {
            // Per-workload panics were caught inside the worker; a join
            // error here would mean the chunking loop itself panicked.
            for (i, r) in h
                .join()
                .expect("worker harness panicked")
                .into_iter()
                .enumerate()
            {
                out[base + i] = Some(r);
            }
        }
    });
    let mut ok = Vec::new();
    let mut failed = Vec::new();
    for (slot, w) in out.into_iter().zip(workloads) {
        match slot.expect("all slots filled") {
            Some(pair) => ok.push(pair),
            None => failed.push(w.name.to_string()),
        }
    }
    (ok, failed)
}

/// Runs every workload under several modes; returns `results[mode][wl]`.
pub fn run_matrix(
    modes: &[SecurityMode],
    cfg: &ExperimentConfig,
) -> Vec<(SecurityMode, Vec<(SpecWorkload, SimReport)>)> {
    modes.iter().map(|m| (*m, run_all_spec(*m, cfg))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_consistent_reports() {
        let cfg = ExperimentConfig {
            insts: 5_000,
            seed: 1,
            threads: 4,
        };
        let w = cleanupspec_workloads::spec::spec_workload("gcc").unwrap();
        let r = run_spec_workload(&w, SecurityMode::NonSecure, &cfg);
        assert!(r.cores[0].committed_insts >= 5_000);
        assert!(r.cycles > 0);
    }

    #[test]
    fn parallel_sweep_preserves_order() {
        let cfg = ExperimentConfig {
            insts: 2_000,
            seed: 1,
            threads: 3,
        };
        let rs = run_selected_spec(&SPEC_WORKLOADS[..5], SecurityMode::NonSecure, &cfg);
        for (i, (w, _)) in rs.iter().enumerate() {
            assert_eq!(w.name, SPEC_WORKLOADS[i].name);
        }
    }

    #[test]
    fn warmup_never_exceeds_quarter_of_measured_region() {
        // The historical clamp `(insts / 4).clamp(10_000, 100_000)` warmed
        // 10k insts even for a 4k-inst run, so small sweeps measured from
        // a cache state the headline sweep never reaches.
        assert_eq!(warmup_insts(4_000), 1_000);
        assert_eq!(warmup_insts(ExperimentConfig::quick().insts), 10_000);
        assert_eq!(warmup_insts(ExperimentConfig::default().insts), 75_000);
        assert_eq!(warmup_insts(1_000_000), 100_000);
        for insts in [0, 1, 4_000, 39_999, 40_000, 400_000, 4_000_000] {
            assert!(warmup_insts(insts) <= insts / 4, "insts={insts}");
        }
    }

    #[test]
    fn panicking_workload_does_not_sink_the_sweep() {
        let cfg = ExperimentConfig {
            insts: 2_000,
            seed: 3,
            threads: 2,
        };
        let (ok, failed) = sweep_isolated(&SPEC_WORKLOADS[..4], cfg.threads, |w| {
            if w.name == SPEC_WORKLOADS[1].name {
                panic!("injected workload crash");
            }
            run_spec_workload(w, SecurityMode::NonSecure, &cfg)
        });
        assert_eq!(failed, vec![SPEC_WORKLOADS[1].name.to_string()]);
        let names: Vec<&str> = ok.iter().map(|(w, _)| w.name).collect();
        assert_eq!(
            names,
            vec![
                SPEC_WORKLOADS[0].name,
                SPEC_WORKLOADS[2].name,
                SPEC_WORKLOADS[3].name
            ]
        );
    }

    #[test]
    fn checkpoint_cache_roundtrips_and_skips_resimulation() {
        let dir = std::env::temp_dir().join(format!(
            "cs-snap-runner-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ExperimentConfig {
            insts: 3_000,
            seed: 9,
            threads: 1,
        };
        let w = cleanupspec_workloads::spec::spec_workload("gcc").unwrap();
        let (fresh, cached) =
            run_spec_workload_checkpointed(&w, SecurityMode::CleanupSpec, &cfg, Some(&dir));
        assert!(!cached, "first run must simulate");
        let (replayed, cached) =
            run_spec_workload_checkpointed(&w, SecurityMode::CleanupSpec, &cfg, Some(&dir));
        assert!(cached, "second run must come from the cache");
        assert_eq!(
            cleanupspec::snap::report_json(&fresh),
            cleanupspec::snap::report_json(&replayed)
        );
        // A different seed is a different key: no false sharing.
        let other = ExperimentConfig { seed: 10, ..cfg };
        let (_, cached) =
            run_spec_workload_checkpointed(&w, SecurityMode::CleanupSpec, &other, Some(&dir));
        assert!(!cached);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn determinism_same_seed_same_cycles() {
        let cfg = ExperimentConfig {
            insts: 5_000,
            seed: 77,
            threads: 1,
        };
        let w = cleanupspec_workloads::spec::spec_workload("astar").unwrap();
        let a = run_spec_workload(&w, SecurityMode::CleanupSpec, &cfg);
        let b = run_spec_workload(&w, SecurityMode::CleanupSpec, &cfg);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.traffic.total(), b.traffic.total());
    }
}
