//! Experiment sizing, the cs-snap result-cache helpers, and the
//! deprecated pre-`Sweep` entry points.
//!
//! The seven historical runner functions (`run_spec_workload`,
//! `run_spec_workload_checkpointed`, `run_all_spec`,
//! `run_selected_spec`, `run_selected_spec_partial`, `sweep_isolated`,
//! `run_matrix`) are now thin `#[deprecated]` shims over the
//! [`crate::exec::Sweep`] builder and the work-stealing pool; see
//! `docs/EXECUTOR.md` for the migration table. The sizing knobs
//! ([`ExperimentConfig`], [`warmup_insts`]) and the checkpoint cache
//! helpers stay here and are not deprecated.

use crate::exec::{self, ExecConfig, PanicPolicy, Sweep};
use crate::store::ArtifactStore as _;
use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::SimReport;
use cleanupspec::snap::{read_checkpoint, write_checkpoint, CheckpointKey};
use cleanupspec_workloads::spec::{SpecWorkload, SPEC_WORKLOADS};
use std::path::{Path, PathBuf};

/// Experiment sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// Committed instructions simulated per workload (the paper runs 500M
    /// on gem5; the default here keeps a full 19-workload sweep under a
    /// minute while past the warm-up regime).
    pub insts: u64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for the sweep.
    pub threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            insts: std::env::var("CLEANUPSPEC_INSTS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(300_000),
            seed: 0xC1EA_2019,
            // One shared default across every harness: CLEANUPSPEC_THREADS
            // env override, else available parallelism, else 4.
            threads: exec::default_threads(),
        }
    }
}

impl ExperimentConfig {
    /// A reduced configuration for Criterion benches and smoke tests.
    pub fn quick() -> Self {
        ExperimentConfig {
            insts: 40_000,
            ..ExperimentConfig::default()
        }
    }
}

/// Warmup sizing shared by every harness: a quarter of the measured
/// region, floored at 10k so tiny runs still warm the predictor, capped
/// at 100k so huge runs don't over-warm — but never MORE than a quarter
/// of the run, so `--insts 4000` does not warm 10k and measure 4k from
/// a fully-primed state the real sweep never sees.
pub fn warmup_insts(insts: u64) -> u64 {
    (insts / 4).clamp(10_000, 100_000).min(insts / 4)
}

/// Directory for the cs-snap result cache, from `CLEANUPSPEC_CHECKPOINT_DIR`.
/// Figure binaries spawned by `repro_all --checkpoint-dir` inherit it.
pub fn checkpoint_dir_from_env() -> Option<PathBuf> {
    std::env::var_os("CLEANUPSPEC_CHECKPOINT_DIR")
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// The cache key identifying one `(workload, mode, sizing, seed)` run.
pub fn checkpoint_key(
    w: &SpecWorkload,
    mode: SecurityMode,
    cfg: &ExperimentConfig,
) -> CheckpointKey {
    CheckpointKey {
        workload: w.name.to_string(),
        mode,
        insts: cfg.insts,
        seed: cfg.seed,
        warmup: warmup_insts(cfg.insts),
    }
}

/// Looks `key` up in the on-disk cs-snap cache, reading through the
/// hardened [`crate::store::ArtifactStore`]: a checksum-mismatched file
/// is quarantined, and snap-level corruption (format or key drift) is
/// ignored (and reported) rather than trusted. Either way the lookup
/// degrades to a cache miss.
pub fn load_checkpoint(dir: &Path, key: &CheckpointKey) -> Option<SimReport> {
    let store = crate::store::shared_dir_store(dir);
    let name = key.file_name();
    let bytes = match store.get(&name) {
        Ok(b) => b,
        Err(crate::store::StoreError::NotFound(_)) => return None,
        Err(e) => {
            eprintln!("warning: ignoring checkpoint: {e}");
            return None;
        }
    };
    let text = String::from_utf8_lossy(&bytes);
    match read_checkpoint(&text, key) {
        Ok(report) => Some(report),
        Err(e) => {
            eprintln!("warning: ignoring checkpoint {name}: {e}");
            // The file is well-formed enough to pass its byte checksum
            // but fails snap-level validation — move it aside so it is
            // not re-parsed on every lookup.
            store.quarantine(&name, &e.to_string());
            None
        }
    }
}

/// Writes `report` into the cache through the hardened artifact store:
/// unique tmp per writer + fsync + rename (so parallel sweep workers
/// storing the same key can never clobber each other), a checksum
/// sidecar, and in-memory degradation instead of a mid-sweep panic when
/// the directory is unwritable. Unsuccessful runs are not cacheable and
/// are silently skipped.
pub fn store_checkpoint(dir: &Path, key: &CheckpointKey, report: &SimReport) {
    let Some(text) = write_checkpoint(key, report) else {
        return;
    };
    let store = crate::store::shared_dir_store(dir);
    if let Err(e) = store.put(&key.file_name(), text.as_bytes()) {
        eprintln!("warning: cannot write checkpoint {}: {e}", key.file_name());
    }
}

/// Runs one Table-3 workload under `mode` and returns its report.
#[deprecated(note = "build a one-cell `Sweep` instead (see docs/EXECUTOR.md)")]
pub fn run_spec_workload(
    w: &SpecWorkload,
    mode: SecurityMode,
    cfg: &ExperimentConfig,
) -> SimReport {
    crate::exec::run_spec_once(w, mode, cfg, checkpoint_dir_from_env().as_deref()).0
}

/// [`run_spec_workload`] with an explicit cache directory. Returns the
/// report and whether it was served from the cache (no simulation ran).
#[deprecated(note = "use `Sweep::new().checkpoints(dir)` (see docs/EXECUTOR.md)")]
pub fn run_spec_workload_checkpointed(
    w: &SpecWorkload,
    mode: SecurityMode,
    cfg: &ExperimentConfig,
    checkpoint_dir: Option<&Path>,
) -> (SimReport, bool) {
    crate::exec::run_spec_once(w, mode, cfg, checkpoint_dir)
}

/// Runs all 19 workloads under `mode`, in parallel. Results are returned
/// in Table-3 order.
#[deprecated(note = "use `Sweep::new().mode(mode).config(cfg)` (see docs/EXECUTOR.md)")]
pub fn run_all_spec(mode: SecurityMode, cfg: &ExperimentConfig) -> Vec<(SpecWorkload, SimReport)> {
    selected_spec_sweep(&SPEC_WORKLOADS, mode, cfg).0
}

/// Runs a subset of workloads under `mode`, in parallel, preserving order.
///
/// A panic inside one workload's simulation does not sink the whole
/// sweep: panicked workloads are reported by name on stderr and the
/// surviving reports are returned (still in input order).
#[deprecated(note = "use `Sweep::new().workloads(..).mode(mode)` (see docs/EXECUTOR.md)")]
pub fn run_selected_spec(
    workloads: &[SpecWorkload],
    mode: SecurityMode,
    cfg: &ExperimentConfig,
) -> Vec<(SpecWorkload, SimReport)> {
    let (ok, failed) = selected_spec_sweep(workloads, mode, cfg);
    if !failed.is_empty() {
        eprintln!(
            "warning: {} workload(s) panicked under {} and were dropped from the sweep: {}",
            failed.len(),
            mode.name(),
            failed.join(", ")
        );
    }
    ok
}

/// [`run_selected_spec`] returning the surviving `(workload, report)`
/// pairs plus the names of workloads whose simulation panicked.
#[deprecated(note = "use `Sweep` and `SweepResult::failed_names` (see docs/EXECUTOR.md)")]
pub fn run_selected_spec_partial(
    workloads: &[SpecWorkload],
    mode: SecurityMode,
    cfg: &ExperimentConfig,
) -> (Vec<(SpecWorkload, SimReport)>, Vec<String>) {
    selected_spec_sweep(workloads, mode, cfg)
}

/// Shared non-deprecated core of the single-mode shims.
fn selected_spec_sweep(
    workloads: &[SpecWorkload],
    mode: SecurityMode,
    cfg: &ExperimentConfig,
) -> (Vec<(SpecWorkload, SimReport)>, Vec<String>) {
    let result = Sweep::new()
        .workloads(workloads)
        .mode(mode)
        .config(cfg)
        .run();
    let failed = result.failed_names();
    (result.into_single_mode(), failed)
}

/// Parallel per-workload sweep with crash isolation: `run` executes
/// under `catch_unwind` so one panicking workload costs only its own
/// slot, not the whole sweep. Order of survivors matches input order.
#[deprecated(note = "use `exec::run_indexed` (see docs/EXECUTOR.md)")]
pub fn sweep_isolated<F>(
    workloads: &[SpecWorkload],
    threads: usize,
    run: F,
) -> (Vec<(SpecWorkload, SimReport)>, Vec<String>)
where
    F: Fn(&SpecWorkload) -> SimReport + Sync,
{
    let outcome = exec::run_indexed(
        workloads.len(),
        &ExecConfig {
            threads,
            on_panic: PanicPolicy::KeepGoing,
            ..ExecConfig::default()
        },
        |i| run(&workloads[i]),
    );
    let mut ok = Vec::new();
    let mut failed = Vec::new();
    for (slot, w) in outcome.slots.into_iter().zip(workloads) {
        match slot {
            Some(report) => ok.push((*w, report)),
            None => failed.push(w.name.to_string()),
        }
    }
    (ok, failed)
}

/// Runs every workload under several modes; returns `results[mode][wl]`.
#[deprecated(note = "use `Sweep::new().modes(modes).config(cfg)` (see docs/EXECUTOR.md)")]
pub fn run_matrix(
    modes: &[SecurityMode],
    cfg: &ExperimentConfig,
) -> Vec<(SecurityMode, Vec<(SpecWorkload, SimReport)>)> {
    Sweep::new()
        .modes(modes)
        .config(cfg)
        .run()
        .modes
        .into_iter()
        .map(|g| (g.mode, g.into_pairs()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_consistent_reports() {
        let cfg = ExperimentConfig {
            insts: 5_000,
            seed: 1,
            threads: 4,
        };
        let w = cleanupspec_workloads::spec::spec_workload("gcc").unwrap();
        let r = crate::exec::run_spec_once(&w, SecurityMode::NonSecure, &cfg, None).0;
        assert!(r.cores[0].committed_insts >= 5_000);
        assert!(r.cycles > 0);
    }

    // Shim-pinning test: the deprecated surface must keep working (and
    // keep its ordering contract) for one release.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_preserve_the_historical_contracts() {
        let cfg = ExperimentConfig {
            insts: 2_000,
            seed: 1,
            threads: 3,
        };
        let rs = run_selected_spec(&SPEC_WORKLOADS[..4], SecurityMode::NonSecure, &cfg);
        for (i, (w, _)) in rs.iter().enumerate() {
            assert_eq!(w.name, SPEC_WORKLOADS[i].name);
        }
        let matrix = run_matrix(
            &[SecurityMode::NonSecure],
            &ExperimentConfig {
                insts: 2_000,
                ..cfg
            },
        );
        assert_eq!(matrix.len(), 1);
        assert_eq!(matrix[0].1.len(), SPEC_WORKLOADS.len());
        let w = cleanupspec_workloads::spec::spec_workload("gcc").unwrap();
        let direct = run_spec_workload(&w, SecurityMode::NonSecure, &cfg);
        let via_sweep = crate::exec::run_spec_once(&w, SecurityMode::NonSecure, &cfg, None).0;
        assert_eq!(direct.cycles, via_sweep.cycles);
    }

    #[test]
    fn warmup_never_exceeds_quarter_of_measured_region() {
        // The historical clamp `(insts / 4).clamp(10_000, 100_000)` warmed
        // 10k insts even for a 4k-inst run, so small sweeps measured from
        // a cache state the headline sweep never reaches.
        assert_eq!(warmup_insts(4_000), 1_000);
        assert_eq!(warmup_insts(ExperimentConfig::quick().insts), 10_000);
        assert_eq!(warmup_insts(ExperimentConfig::default().insts), 75_000);
        assert_eq!(warmup_insts(1_000_000), 100_000);
        for insts in [0, 1, 4_000, 39_999, 40_000, 400_000, 4_000_000] {
            assert!(warmup_insts(insts) <= insts / 4, "insts={insts}");
        }
    }

    #[test]
    #[allow(deprecated)]
    fn panicking_workload_does_not_sink_the_sweep() {
        let cfg = ExperimentConfig {
            insts: 2_000,
            seed: 3,
            threads: 2,
        };
        let (ok, failed) = sweep_isolated(&SPEC_WORKLOADS[..4], cfg.threads, |w| {
            if w.name == SPEC_WORKLOADS[1].name {
                panic!("injected workload crash");
            }
            crate::exec::run_spec_once(w, SecurityMode::NonSecure, &cfg, None).0
        });
        assert_eq!(failed, vec![SPEC_WORKLOADS[1].name.to_string()]);
        let names: Vec<&str> = ok.iter().map(|(w, _)| w.name).collect();
        assert_eq!(
            names,
            vec![
                SPEC_WORKLOADS[0].name,
                SPEC_WORKLOADS[2].name,
                SPEC_WORKLOADS[3].name
            ]
        );
    }

    #[test]
    fn checkpoint_cache_roundtrips_and_skips_resimulation() {
        let dir = std::env::temp_dir().join(format!(
            "cs-snap-runner-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ExperimentConfig {
            insts: 3_000,
            seed: 9,
            threads: 1,
        };
        let w = cleanupspec_workloads::spec::spec_workload("gcc").unwrap();
        let (fresh, cached) =
            crate::exec::run_spec_once(&w, SecurityMode::CleanupSpec, &cfg, Some(&dir));
        assert!(!cached, "first run must simulate");
        let (replayed, cached) =
            crate::exec::run_spec_once(&w, SecurityMode::CleanupSpec, &cfg, Some(&dir));
        assert!(cached, "second run must come from the cache");
        assert_eq!(
            cleanupspec::snap::report_json(&fresh),
            cleanupspec::snap::report_json(&replayed)
        );
        // A different seed is a different key: no false sharing.
        let other = ExperimentConfig { seed: 10, ..cfg };
        let (_, cached) =
            crate::exec::run_spec_once(&w, SecurityMode::CleanupSpec, &other, Some(&dir));
        assert!(!cached);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn determinism_same_seed_same_cycles() {
        let cfg = ExperimentConfig {
            insts: 5_000,
            seed: 77,
            threads: 1,
        };
        let w = cleanupspec_workloads::spec::spec_workload("astar").unwrap();
        let a = crate::exec::run_spec_once(&w, SecurityMode::CleanupSpec, &cfg, None).0;
        let b = crate::exec::run_spec_once(&w, SecurityMode::CleanupSpec, &cfg, None).0;
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.traffic.total(), b.traffic.total());
    }
}
