//! Shared experiment runner: executes calibrated workloads under security
//! modes and collects [`SimReport`]s. Workloads run in parallel threads
//! (each simulation is independent and deterministic per seed).

use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::{SimBuilder, SimReport};
use cleanupspec_workloads::spec::{SpecWorkload, SPEC_WORKLOADS};
use std::thread;

/// Experiment sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// Committed instructions simulated per workload (the paper runs 500M
    /// on gem5; the default here keeps a full 19-workload sweep under a
    /// minute while past the warm-up regime).
    pub insts: u64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for the sweep.
    pub threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            insts: std::env::var("CLEANUPSPEC_INSTS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(300_000),
            seed: 0xC1EA_2019,
            threads: thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

impl ExperimentConfig {
    /// A reduced configuration for Criterion benches and smoke tests.
    pub fn quick() -> Self {
        ExperimentConfig {
            insts: 40_000,
            ..ExperimentConfig::default()
        }
    }
}

/// Runs one Table-3 workload under `mode` and returns its report.
pub fn run_spec_workload(
    w: &SpecWorkload,
    mode: SecurityMode,
    cfg: &ExperimentConfig,
) -> SimReport {
    // Mix the FULL workload name into the seed: hashing only the first
    // byte made e.g. "gcc" and "gap" share a program-generation stream.
    let program = w.build(cfg.seed ^ cleanupspec_mem::rng::mix_str(w.name));
    let mut sim = SimBuilder::new(mode)
        .program(program)
        // Mix the name into the *sim* seed too: otherwise all 19 workloads
        // share one L1 random-replacement stream and one CEASER key.
        .seed(cfg.seed ^ cleanupspec_mem::rng::mix_str(w.name))
        .build();
    // Warm caches/predictor, reset statistics, then measure.
    let warmup = (cfg.insts / 4).clamp(10_000, 100_000);
    sim.run_with_warmup(warmup, cfg.insts);
    let report = sim.report();
    // A truncated run (cycle-limit exhaustion, livelock) must not pose as
    // a measurement: its IPC and traffic numbers describe a different
    // experiment than the table claims.
    if let Some(stop) = report.stop.as_ref().filter(|s| !s.is_success()) {
        eprintln!(
            "warning: workload {} under {} stopped early ({stop}); report is truncated",
            w.name,
            mode.name()
        );
    }
    report
}

/// Runs all 19 workloads under `mode`, in parallel. Results are returned
/// in Table-3 order.
pub fn run_all_spec(mode: SecurityMode, cfg: &ExperimentConfig) -> Vec<(SpecWorkload, SimReport)> {
    run_selected_spec(&SPEC_WORKLOADS, mode, cfg)
}

/// Runs a subset of workloads under `mode`, in parallel, preserving order.
pub fn run_selected_spec(
    workloads: &[SpecWorkload],
    mode: SecurityMode,
    cfg: &ExperimentConfig,
) -> Vec<(SpecWorkload, SimReport)> {
    let chunk = workloads.len().div_ceil(cfg.threads.max(1));
    let mut out: Vec<Option<(SpecWorkload, SimReport)>> = vec![None; workloads.len()];
    thread::scope(|s| {
        let mut handles = Vec::new();
        for (ci, ws) in workloads.chunks(chunk).enumerate() {
            let cfg = *cfg;
            handles.push((
                ci * chunk,
                s.spawn(move || {
                    ws.iter()
                        .map(|w| (*w, run_spec_workload(w, mode, &cfg)))
                        .collect::<Vec<_>>()
                }),
            ));
        }
        for (base, h) in handles {
            for (i, r) in h.join().expect("worker panicked").into_iter().enumerate() {
                out[base + i] = Some(r);
            }
        }
    });
    out.into_iter()
        .map(|o| o.expect("all slots filled"))
        .collect()
}

/// Runs every workload under several modes; returns `results[mode][wl]`.
pub fn run_matrix(
    modes: &[SecurityMode],
    cfg: &ExperimentConfig,
) -> Vec<(SecurityMode, Vec<(SpecWorkload, SimReport)>)> {
    modes.iter().map(|m| (*m, run_all_spec(*m, cfg))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_consistent_reports() {
        let cfg = ExperimentConfig {
            insts: 5_000,
            seed: 1,
            threads: 4,
        };
        let w = cleanupspec_workloads::spec::spec_workload("gcc").unwrap();
        let r = run_spec_workload(&w, SecurityMode::NonSecure, &cfg);
        assert!(r.cores[0].committed_insts >= 5_000);
        assert!(r.cycles > 0);
    }

    #[test]
    fn parallel_sweep_preserves_order() {
        let cfg = ExperimentConfig {
            insts: 2_000,
            seed: 1,
            threads: 3,
        };
        let rs = run_selected_spec(&SPEC_WORKLOADS[..5], SecurityMode::NonSecure, &cfg);
        for (i, (w, _)) in rs.iter().enumerate() {
            assert_eq!(w.name, SPEC_WORKLOADS[i].name);
        }
    }

    #[test]
    fn determinism_same_seed_same_cycles() {
        let cfg = ExperimentConfig {
            insts: 5_000,
            seed: 77,
            threads: 1,
        };
        let w = cleanupspec_workloads::spec::spec_workload("astar").unwrap();
        let a = run_spec_workload(&w, SecurityMode::CleanupSpec, &cfg);
        let b = run_spec_workload(&w, SecurityMode::CleanupSpec, &cfg);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.traffic.total(), b.traffic.total());
    }
}
