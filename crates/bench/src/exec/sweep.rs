//! The `Sweep` builder: one front door for every mode×workload campaign.
//!
//! Historically the runner grew seven overlapping entry points
//! (`run_spec_workload`, `run_spec_workload_checkpointed`,
//! `run_all_spec`, `run_selected_spec`, `run_selected_spec_partial`,
//! `sweep_isolated`, `run_matrix`) that differed only in which corner of
//! the same matrix they fixed. They are now `#[deprecated]` shims over
//! this builder:
//!
//! ```no_run
//! use cleanupspec::modes::SecurityMode;
//! use cleanupspec_bench::Sweep;
//!
//! let result = Sweep::new()
//!     .modes(&SecurityMode::MAIN)
//!     .insts(40_000)
//!     .seed(0xC1EA_2019)
//!     .threads(4)
//!     .run();
//! for mode in &result.modes {
//!     for run in &mode.runs {
//!         println!("{} {} ipc={:.3}", mode.mode.name(), run.workload.name,
//!                  run.report.ipc());
//!     }
//! }
//! ```
//!
//! The whole matrix is flattened into one task list for the
//! work-stealing pool, so a slow workload in one mode steals no time
//! from the other modes' fast workloads. Results come back grouped by
//! mode, workloads in input order, independent of scheduling.

use super::pool::{run_indexed, ExecConfig, ExecStats, PanicPolicy};
use crate::runner::{
    checkpoint_dir_from_env, checkpoint_key, load_checkpoint, store_checkpoint, warmup_insts,
    ExperimentConfig,
};
use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::{SimBuilder, SimReport};
use cleanupspec_workloads::spec::{SpecWorkload, SPEC_WORKLOADS};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Where a [`Sweep`] looks for the cs-snap result cache.
#[derive(Clone, Debug, Default)]
enum CheckpointPolicy {
    /// Honor `CLEANUPSPEC_CHECKPOINT_DIR` if set (the default — matches
    /// the historical `run_spec_workload` behavior).
    #[default]
    FromEnv,
    /// Never read or write checkpoints, whatever the environment says.
    Disabled,
    /// Use this directory explicitly.
    Dir(PathBuf),
}

/// One completed simulation inside a sweep.
#[derive(Clone, Debug)]
pub struct SweepRun {
    /// The workload that ran.
    pub workload: SpecWorkload,
    /// The security mode it ran under.
    pub mode: SecurityMode,
    /// The simulation report.
    pub report: SimReport,
    /// Host wall-clock for this run (≈0 when served from the cache).
    pub wall_secs: f64,
    /// Whether the report came from the cs-snap cache (no simulation).
    pub from_checkpoint: bool,
}

/// One panicked run inside a sweep, identified by mode and workload.
#[derive(Clone, Debug)]
pub struct SweepFailure {
    /// The mode whose run panicked.
    pub mode: SecurityMode,
    /// Name of the workload that panicked.
    pub workload: String,
    /// Best-effort panic message.
    pub message: String,
}

/// All surviving runs of one mode, workloads in input order.
#[derive(Clone, Debug)]
pub struct ModeSweep {
    /// The mode this group ran under.
    pub mode: SecurityMode,
    /// Surviving runs, in the order the workloads were given.
    pub runs: Vec<SweepRun>,
}

impl ModeSweep {
    /// The historical `(workload, report)` pair shape most figure
    /// binaries consume.
    pub fn into_pairs(self) -> Vec<(SpecWorkload, SimReport)> {
        self.runs
            .into_iter()
            .map(|r| (r.workload, r.report))
            .collect()
    }

    /// Borrowing lookup of one workload's report by name.
    pub fn report(&self, workload: &str) -> Option<&SimReport> {
        self.runs
            .iter()
            .find(|r| r.workload.name == workload)
            .map(|r| &r.report)
    }
}

/// Everything a sweep produced: per-mode survivors, failures, skipped
/// runs, and scheduling/timing counters.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// One group per requested mode, in request order.
    pub modes: Vec<ModeSweep>,
    /// Runs that panicked (isolated; the rest of the sweep completed
    /// or was cancelled according to the panic policy).
    pub failures: Vec<SweepFailure>,
    /// Runs skipped by fail-fast cancellation, as `(mode, workload)`.
    pub skipped: Vec<(SecurityMode, String)>,
    /// Work-stealing pool counters for the whole sweep.
    pub stats: ExecStats,
    /// End-to-end wall-clock of the sweep.
    pub wall_secs: f64,
    /// Runs served from the cs-snap cache instead of simulating.
    pub cache_hits: u64,
}

impl SweepResult {
    /// Whether every requested run produced a report.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty() && self.skipped.is_empty()
    }

    /// The group for `mode`, if it was part of the sweep.
    pub fn mode(&self, mode: SecurityMode) -> Option<&ModeSweep> {
        self.modes.iter().find(|m| m.mode == mode)
    }

    /// Collapses a single-mode sweep into the historical pair shape.
    /// Panics if the sweep requested more than one mode.
    pub fn into_single_mode(mut self) -> Vec<(SpecWorkload, SimReport)> {
        assert!(
            self.modes.len() <= 1,
            "into_single_mode on a {}-mode sweep",
            self.modes.len()
        );
        self.modes
            .pop()
            .map(ModeSweep::into_pairs)
            .unwrap_or_default()
    }

    /// Names of panicked workloads, per the historical
    /// `run_selected_spec_partial` contract (one entry per failure, in
    /// matrix order).
    pub fn failed_names(&self) -> Vec<String> {
        self.failures.iter().map(|f| f.workload.clone()).collect()
    }

    /// Prints the historical stderr warning for dropped workloads.
    pub fn warn_if_incomplete(&self) {
        if !self.failures.is_empty() {
            let names: Vec<String> = self
                .failures
                .iter()
                .map(|f| format!("{} ({})", f.workload, f.mode.name()))
                .collect();
            eprintln!(
                "warning: {} run(s) panicked and were dropped from the sweep: {}",
                self.failures.len(),
                names.join(", ")
            );
        }
        if !self.skipped.is_empty() {
            eprintln!(
                "warning: {} run(s) skipped by fail-fast cancellation",
                self.skipped.len()
            );
        }
    }
}

/// Builder for a mode×workload campaign on the work-stealing executor.
/// Defaults: all 19 Table-3 workloads, `NonSecure` only, sizing from
/// [`ExperimentConfig::default`] (`CLEANUPSPEC_INSTS`, seed
/// `0xC1EA_2019`, [`super::default_threads`]), checkpoints from
/// `CLEANUPSPEC_CHECKPOINT_DIR`, keep-going panic policy.
#[derive(Clone, Debug)]
pub struct Sweep {
    modes: Vec<SecurityMode>,
    workloads: Vec<SpecWorkload>,
    insts: u64,
    seed: u64,
    threads: usize,
    checkpoints: CheckpointPolicy,
    on_panic: PanicPolicy,
}

impl Default for Sweep {
    fn default() -> Self {
        Sweep::new()
    }
}

impl Sweep {
    /// A sweep with the defaults above.
    pub fn new() -> Self {
        let cfg = ExperimentConfig::default();
        Sweep {
            modes: vec![SecurityMode::NonSecure],
            workloads: SPEC_WORKLOADS.to_vec(),
            insts: cfg.insts,
            seed: cfg.seed,
            threads: cfg.threads,
            checkpoints: CheckpointPolicy::FromEnv,
            on_panic: PanicPolicy::KeepGoing,
        }
    }

    /// The security modes to sweep (request order is result order).
    pub fn modes(mut self, modes: &[SecurityMode]) -> Self {
        self.modes = modes.to_vec();
        self
    }

    /// Single-mode convenience.
    pub fn mode(self, mode: SecurityMode) -> Self {
        self.modes(&[mode])
    }

    /// The workloads to sweep (input order is result order).
    pub fn workloads(mut self, workloads: &[SpecWorkload]) -> Self {
        self.workloads = workloads.to_vec();
        self
    }

    /// Committed instructions per run.
    pub fn insts(mut self, insts: u64) -> Self {
        self.insts = insts;
        self
    }

    /// Base seed, mixed per-workload with `mix_str(name)`.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads for the pool.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Takes insts, seed and threads from an [`ExperimentConfig`].
    pub fn config(mut self, cfg: &ExperimentConfig) -> Self {
        self.insts = cfg.insts;
        self.seed = cfg.seed;
        self.threads = cfg.threads;
        self
    }

    /// Explicit cs-snap cache directory (`None` disables caching even
    /// when `CLEANUPSPEC_CHECKPOINT_DIR` is set). Not calling this at
    /// all keeps the default env-driven behavior.
    pub fn checkpoints(mut self, dir: Option<&Path>) -> Self {
        self.checkpoints = match dir {
            Some(d) => CheckpointPolicy::Dir(d.to_path_buf()),
            None => CheckpointPolicy::Disabled,
        };
        self
    }

    /// Panic policy for the pool ([`PanicPolicy::KeepGoing`] default).
    pub fn on_panic(mut self, policy: PanicPolicy) -> Self {
        self.on_panic = policy;
        self
    }

    /// Runs the campaign. The matrix is flattened into one task list
    /// (task `i` = mode `i / W`, workload `i % W`) so the pool balances
    /// across the whole sweep, then regrouped per mode in input order.
    pub fn run(self) -> SweepResult {
        let t0 = Instant::now();
        let (nm, nw) = (self.modes.len(), self.workloads.len());
        let cfg = ExperimentConfig {
            insts: self.insts,
            seed: self.seed,
            threads: self.threads,
        };
        let dir: Option<PathBuf> = match self.checkpoints {
            CheckpointPolicy::FromEnv => checkpoint_dir_from_env(),
            CheckpointPolicy::Disabled => None,
            CheckpointPolicy::Dir(d) => Some(d),
        };
        let exec_cfg = ExecConfig {
            threads: self.threads,
            on_panic: self.on_panic,
            ..ExecConfig::default()
        };
        let (modes, workloads) = (&self.modes, &self.workloads);
        let outcome = run_indexed(nm * nw, &exec_cfg, |i| {
            let (mode, w) = (modes[i / nw], &workloads[i % nw]);
            let start = Instant::now();
            let (report, from_checkpoint) = run_spec_once(w, mode, &cfg, dir.as_deref());
            SweepRun {
                workload: *w,
                mode,
                report,
                wall_secs: start.elapsed().as_secs_f64(),
                from_checkpoint,
            }
        });

        let mut slots = outcome.slots.into_iter();
        let mut cache_hits = 0u64;
        let mode_groups: Vec<ModeSweep> = self
            .modes
            .iter()
            .map(|&mode| ModeSweep {
                mode,
                runs: (0..nw)
                    .filter_map(|_| slots.next().flatten())
                    .inspect(|r| cache_hits += u64::from(r.from_checkpoint))
                    .collect(),
            })
            .collect();
        let failures = outcome
            .failures
            .into_iter()
            .map(|f| SweepFailure {
                mode: self.modes[f.index / nw],
                workload: self.workloads[f.index % nw].name.to_string(),
                message: f.message,
            })
            .collect();
        let skipped = outcome
            .cancelled
            .into_iter()
            .map(|i| (self.modes[i / nw], self.workloads[i % nw].name.to_string()))
            .collect();
        SweepResult {
            modes: mode_groups,
            failures,
            skipped,
            stats: outcome.stats,
            wall_secs: t0.elapsed().as_secs_f64(),
            cache_hits,
        }
    }
}

/// The single-run core every sweep task executes: cs-snap cache lookup,
/// seed mixing, warmup + measure, truncation warning, cache store. The
/// deprecated `run_spec_workload`/`run_spec_workload_checkpointed`
/// shims delegate here too, so there is exactly one implementation.
pub(crate) fn run_spec_once(
    w: &SpecWorkload,
    mode: SecurityMode,
    cfg: &ExperimentConfig,
    checkpoint_dir: Option<&Path>,
) -> (SimReport, bool) {
    let key = checkpoint_key(w, mode, cfg);
    if let Some(dir) = checkpoint_dir {
        if let Some(report) = load_checkpoint(dir, &key) {
            return (report, true);
        }
    }
    // Mix the FULL workload name into the seed: hashing only the first
    // byte made e.g. "gcc" and "gap" share a program-generation stream.
    let program = w.build(cfg.seed ^ cleanupspec_mem::rng::mix_str(w.name));
    let mut sim = SimBuilder::new(mode)
        .program(program)
        // Mix the name into the *sim* seed too: otherwise all 19 workloads
        // share one L1 random-replacement stream and one CEASER key.
        .seed(cfg.seed ^ cleanupspec_mem::rng::mix_str(w.name))
        .build();
    // Warm caches/predictor, reset statistics, then measure.
    sim.run_with_warmup(warmup_insts(cfg.insts), cfg.insts);
    let report = sim.report();
    // A truncated run (cycle-limit exhaustion, livelock) must not pose as
    // a measurement: its IPC and traffic numbers describe a different
    // experiment than the table claims.
    if let Some(stop) = report.stop.as_ref().filter(|s| !s.is_success()) {
        eprintln!(
            "warning: workload {} under {} stopped early ({stop}); report is truncated",
            w.name,
            mode.name()
        );
    }
    if let Some(dir) = checkpoint_dir {
        store_checkpoint(dir, &key, &report);
    }
    (report, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Sweep {
        Sweep::new()
            .workloads(&SPEC_WORKLOADS[..3])
            .insts(2_000)
            .seed(5)
            .threads(3)
            .checkpoints(None)
    }

    #[test]
    fn matrix_is_grouped_by_mode_with_workloads_in_input_order() {
        let modes = [SecurityMode::NonSecure, SecurityMode::CleanupSpec];
        let r = tiny().modes(&modes).run();
        assert!(r.is_complete());
        assert_eq!(r.modes.len(), 2);
        for (g, &m) in r.modes.iter().zip(&modes) {
            assert_eq!(g.mode, m);
            let names: Vec<&str> = g.runs.iter().map(|run| run.workload.name).collect();
            let want: Vec<&str> = SPEC_WORKLOADS[..3].iter().map(|w| w.name).collect();
            assert_eq!(names, want);
        }
        assert_eq!(r.stats.tasks_run, 6);
        assert_eq!(r.cache_hits, 0);
    }

    #[test]
    fn sweep_matches_the_direct_single_run_path() {
        let cfg = ExperimentConfig {
            insts: 2_000,
            seed: 5,
            threads: 1,
        };
        let r = tiny().mode(SecurityMode::CleanupSpec).run();
        let (direct, cached) =
            run_spec_once(&SPEC_WORKLOADS[1], SecurityMode::CleanupSpec, &cfg, None);
        assert!(!cached);
        let swept = r.mode(SecurityMode::CleanupSpec).unwrap().runs[1].clone();
        assert_eq!(swept.report.cycles, direct.cycles);
        assert_eq!(swept.report.traffic.total(), direct.traffic.total());
    }

    #[test]
    fn explicit_checkpoint_dir_caches_the_second_run() {
        let dir = std::env::temp_dir().join(format!(
            "cs-exec-sweep-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let sweep = || {
            Sweep::new()
                .workloads(&SPEC_WORKLOADS[..2])
                .modes(&[SecurityMode::NonSecure, SecurityMode::CleanupSpec])
                .insts(2_000)
                .seed(7)
                .threads(2)
                .checkpoints(Some(&dir))
        };
        let first = sweep().run();
        assert_eq!(first.cache_hits, 0, "cold cache must simulate");
        let second = sweep().run();
        assert_eq!(second.cache_hits, 4, "warm cache must serve every run");
        for (a, b) in first.modes.iter().zip(&second.modes) {
            for (ra, rb) in a.runs.iter().zip(&b.runs) {
                assert_eq!(ra.report.cycles, rb.report.cycles);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn thread_count_does_not_change_any_report() {
        let run_at = |threads: usize| {
            tiny()
                .modes(&[SecurityMode::NonSecure, SecurityMode::CleanupSpec])
                .threads(threads)
                .run()
        };
        let a = run_at(1);
        let b = run_at(4);
        for (ga, gb) in a.modes.iter().zip(&b.modes) {
            for (ra, rb) in ga.runs.iter().zip(&gb.runs) {
                assert_eq!(ra.report.cycles, rb.report.cycles);
                assert_eq!(ra.report.traffic.total(), rb.report.traffic.total());
            }
        }
    }
}
