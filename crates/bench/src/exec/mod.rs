//! `cs-exec` — the shared campaign executor.
//!
//! Every harness in this crate sweeps some matrix of independent,
//! deterministic simulations: workloads × security modes (`cs-bench`,
//! the figure binaries), fuzz seeds (`cs-smith`), fault classes
//! (`cs-chaos`). They all used to carry their own static-chunked
//! `thread::scope` pool, so a sweep's wall-clock was bounded by the
//! unluckiest chunk rather than the longest single task. This module
//! replaces those pools with one **work-stealing** executor:
//!
//! * a **bounded global injector** feeds task indices to the pool with
//!   backpressure (the producer blocks on a condvar when the queue is
//!   full), so arbitrarily large campaigns never materialize their whole
//!   schedule in the queue;
//! * **per-worker deques** absorb injector batches; an idle worker first
//!   drains its own deque, then pulls a fresh batch, then **steals half
//!   of the largest other deque** — so a straggler task delays only
//!   itself, never a chunk-mate;
//! * **indexed result slots**: the result of task `i` lands in slot `i`
//!   regardless of which worker ran it or when, so output order is input
//!   order and — because every task is seed-deterministic — the whole
//!   outcome is byte-identical at any `--threads` value (pinned by
//!   `tests/exec_invariance.rs`);
//! * per-task [`std::panic::catch_unwind`] isolation: a panicking task
//!   costs its own slot, is reported by index with its panic message,
//!   and (under [`PanicPolicy::FailFast`]) cooperatively cancels the
//!   tasks that have not started yet;
//! * per-task timing and queue-depth counters that flow into the
//!   existing [`MetricsRegistry`] host-profiling section.
//!
//! Everything is std-only (`Mutex`/`Condvar`, no extra dependencies),
//! respecting the hermetic no-registry build. See `docs/EXECUTOR.md` for
//! the design, the determinism guarantee, and the migration table from
//! the retired per-harness pools.

mod pool;
mod sweep;

pub use pool::{
    default_threads, run_indexed, run_static_chunked, ExecConfig, ExecOutcome, ExecStats,
    PanicPolicy, TaskFailure,
};
pub use sweep::{ModeSweep, Sweep, SweepFailure, SweepResult, SweepRun};

pub(crate) use pool::panic_message;
pub(crate) use sweep::run_spec_once;
