//! The work-stealing pool itself: bounded injector, per-worker deques,
//! panic isolation, cooperative cancellation, and scheduling counters.
//!
//! This file is the **only** place in `crates/bench` that spawns scoped
//! threads; every harness sweep goes through [`run_indexed`] (or the
//! [`run_static_chunked`] control arm kept for the skew benchmark).

use cleanupspec_obs::MetricsRegistry;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::Instant;

/// Worker-thread count honoring the `CLEANUPSPEC_THREADS` environment
/// override (documented next to `CLEANUPSPEC_INSTS` in the README):
/// `CLEANUPSPEC_THREADS` if set and positive, else the machine's
/// available parallelism, else 4. Every harness default routes through
/// here so `--threads` flags and env behave identically across CLIs.
pub fn default_threads() -> usize {
    std::env::var("CLEANUPSPEC_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or_else(|| thread::available_parallelism().map_or(4, |n| n.get()))
}

/// What the pool does with the tasks that have not started yet once one
/// task panics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PanicPolicy {
    /// Run every task regardless; panicked slots are reported and the
    /// survivors are complete. The default — matches the historical
    /// `sweep_isolated` behavior.
    #[default]
    KeepGoing,
    /// Cooperatively cancel after the first panic: tasks already running
    /// finish, queued tasks are drained unrun and reported as cancelled.
    FailFast,
}

/// One panicked task: its input index and the panic message.
#[derive(Clone, Debug)]
pub struct TaskFailure {
    /// Index of the task in the input range.
    pub index: usize,
    /// Best-effort panic payload text.
    pub message: String,
}

/// Scheduling counters for one [`run_indexed`] call. Everything here
/// describes the *host-side* execution (and so may vary run to run);
/// the task results themselves are scheduling-invariant.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecStats {
    /// Tasks that ran to completion (including panicked ones).
    pub tasks_run: u64,
    /// Tasks a worker obtained by stealing from another worker's deque.
    pub tasks_stolen: u64,
    /// Batches pulled from the global injector into a local deque.
    pub injector_batches: u64,
    /// Tasks that panicked (isolated by `catch_unwind`).
    pub panics: u64,
    /// Tasks drained without running due to fail-fast cancellation.
    pub cancelled: u64,
    /// High-water mark of the bounded injector queue.
    pub max_injector_depth: u64,
    /// Sum of per-task wall-clock seconds (CPU-side cost of the sweep).
    pub task_wall_secs: f64,
    /// Longest single task in wall-clock seconds (the tail the stealing
    /// scheduler exists to hide).
    pub max_task_secs: f64,
    /// Worker threads actually used.
    pub threads: u64,
}

impl ExecStats {
    fn merge(&mut self, other: &ExecStats) {
        self.tasks_run += other.tasks_run;
        self.tasks_stolen += other.tasks_stolen;
        self.injector_batches += other.injector_batches;
        self.panics += other.panics;
        self.cancelled += other.cancelled;
        self.max_injector_depth = self.max_injector_depth.max(other.max_injector_depth);
        self.task_wall_secs += other.task_wall_secs;
        self.max_task_secs = self.max_task_secs.max(other.max_task_secs);
    }

    /// Flows the counters into a [`MetricsRegistry`] under `prefix`
    /// (e.g. `exec.tasks`, `exec.stolen`, `exec.task_wall` …), the same
    /// host-profiling section `BENCH_*.json` already carries.
    pub fn record_into(&self, host: &mut MetricsRegistry, prefix: &str) {
        host.add(&format!("{prefix}.tasks"), self.tasks_run);
        host.add(&format!("{prefix}.stolen"), self.tasks_stolen);
        host.add(&format!("{prefix}.injector_batches"), self.injector_batches);
        host.add(&format!("{prefix}.panics"), self.panics);
        host.add(&format!("{prefix}.cancelled"), self.cancelled);
        host.set_gauge(
            &format!("{prefix}.max_injector_depth"),
            self.max_injector_depth as f64,
        );
        host.add_timing(&format!("{prefix}.task_wall"), self.task_wall_secs);
        host.set_gauge(&format!("{prefix}.max_task_secs"), self.max_task_secs);
        host.set_gauge(&format!("{prefix}.threads"), self.threads as f64);
    }
}

/// Result of one [`run_indexed`] call. Slot `i` holds task `i`'s value
/// (input order, independent of scheduling); `None` slots are explained
/// by `failures` (panicked) or `cancelled` (drained under fail-fast).
#[derive(Debug)]
pub struct ExecOutcome<T> {
    /// Per-task results, indexed by input position.
    pub slots: Vec<Option<T>>,
    /// Panicked tasks, sorted by index.
    pub failures: Vec<TaskFailure>,
    /// Indices drained without running (fail-fast), sorted.
    pub cancelled: Vec<usize>,
    /// Scheduling counters for the whole call.
    pub stats: ExecStats,
}

impl<T> ExecOutcome<T> {
    /// Whether every task produced a value.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty() && self.cancelled.is_empty()
    }

    /// The successful results in input order, dropping empty slots.
    pub fn into_ok(self) -> Vec<T> {
        self.slots.into_iter().flatten().collect()
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Pool sizing and policy knobs. `..ExecConfig::default()` is the
/// intended spelling for overriding one field.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Worker threads (capped at the task count; at least 1). Defaults
    /// to [`default_threads`].
    pub threads: usize,
    /// What to do with unstarted tasks after a panic.
    pub on_panic: PanicPolicy,
    /// Bound of the global injector queue; the producer blocks when it
    /// is full. `0` = auto (`8 × threads`, floored at 32).
    pub injector_capacity: usize,
    /// Tasks pulled from the injector per batch. `0` = adaptive
    /// (`queue_len / threads`, clamped to 1..=8), which front-loads
    /// work while leaving enough in the injector to balance.
    pub injector_batch: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: default_threads(),
            on_panic: PanicPolicy::KeepGoing,
            injector_capacity: 0,
            injector_batch: 0,
        }
    }
}

impl ExecConfig {
    /// Default policy with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        ExecConfig {
            threads,
            ..ExecConfig::default()
        }
    }

    /// Switches this configuration to fail-fast cancellation.
    pub fn fail_fast(mut self) -> Self {
        self.on_panic = PanicPolicy::FailFast;
        self
    }
}

/// The bounded global injector: producer side blocks on `not_full`,
/// worker side blocks on `not_empty` until tasks arrive or the producer
/// closes the queue. Lock poisoning is tolerated (a panicking *task*
/// never holds these locks, but a defensive executor should not turn a
/// poisoned mutex into a second crash).
struct Injector {
    state: Mutex<InjectorState>,
    not_full: Condvar,
    not_empty: Condvar,
}

struct InjectorState {
    buf: VecDeque<usize>,
    /// Producer finished (or gave up after cancellation); workers that
    /// find the buffer empty may stop waiting.
    closed: bool,
    max_depth: usize,
}

fn lock_tolerant<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

enum Pull {
    /// A batch of task indices for the local deque.
    Tasks(Vec<usize>),
    /// The injector is closed and empty; move on to stealing.
    Drained,
}

impl Injector {
    fn new(prefill: impl Iterator<Item = usize>) -> Self {
        let buf: VecDeque<usize> = prefill.collect();
        let max_depth = buf.len();
        Injector {
            state: Mutex::new(InjectorState {
                buf,
                closed: false,
                max_depth,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Producer: enqueue `i`, blocking while the queue is at `capacity`.
    /// Returns `false` without enqueuing once `cancelled` is set.
    fn push_blocking(&self, i: usize, capacity: usize, cancelled: &AtomicBool) -> bool {
        let mut st = lock_tolerant(&self.state);
        loop {
            if cancelled.load(Ordering::Relaxed) {
                return false;
            }
            if st.buf.len() < capacity {
                st.buf.push_back(i);
                st.max_depth = st.max_depth.max(st.buf.len());
                self.not_empty.notify_one();
                return true;
            }
            st = self.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Producer: no more tasks will arrive; wake every waiter.
    fn close(&self) {
        lock_tolerant(&self.state).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Fail-fast path: wake all waiters so they can observe `cancelled`.
    fn interrupt(&self) {
        let _guard = lock_tolerant(&self.state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Worker: block until a batch is available or the queue is drained.
    fn pull(&self, threads: usize, batch_override: usize) -> Pull {
        let mut st = lock_tolerant(&self.state);
        loop {
            if !st.buf.is_empty() {
                let batch = if batch_override > 0 {
                    batch_override
                } else {
                    (st.buf.len() / threads).clamp(1, 8)
                };
                let take = batch.min(st.buf.len());
                let tasks: Vec<usize> = st.buf.drain(..take).collect();
                self.not_full.notify_all();
                return Pull::Tasks(tasks);
            }
            if st.closed {
                return Pull::Drained;
            }
            st = self.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn max_depth(&self) -> usize {
        lock_tolerant(&self.state).max_depth
    }
}

/// Everything one worker produced, merged by the caller after join.
struct WorkerOut<T> {
    results: Vec<(usize, T)>,
    failures: Vec<TaskFailure>,
    cancelled: Vec<usize>,
    stats: ExecStats,
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<T, F>(
    wid: usize,
    threads: usize,
    cfg: ExecConfig,
    injector: &Injector,
    deques: &[Mutex<VecDeque<usize>>],
    cancelled: &AtomicBool,
    task: &F,
) -> WorkerOut<T>
where
    F: Fn(usize) -> T + Sync,
    T: Send,
{
    let mut out = WorkerOut {
        results: Vec::new(),
        failures: Vec::new(),
        cancelled: Vec::new(),
        stats: ExecStats::default(),
    };
    let run_one = |i: usize, out: &mut WorkerOut<T>| {
        if cancelled.load(Ordering::Relaxed) {
            out.cancelled.push(i);
            out.stats.cancelled += 1;
            return;
        }
        let start = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| task(i))) {
            Ok(v) => out.results.push((i, v)),
            Err(payload) => {
                out.failures.push(TaskFailure {
                    index: i,
                    message: panic_message(&*payload),
                });
                out.stats.panics += 1;
                if cfg.on_panic == PanicPolicy::FailFast {
                    cancelled.store(true, Ordering::Relaxed);
                    injector.interrupt();
                }
            }
        }
        let wall = start.elapsed().as_secs_f64();
        out.stats.tasks_run += 1;
        out.stats.task_wall_secs += wall;
        out.stats.max_task_secs = out.stats.max_task_secs.max(wall);
    };
    loop {
        // 1. Own deque first: batches and stolen work land here.
        let own = lock_tolerant(&deques[wid]).pop_front();
        if let Some(i) = own {
            run_one(i, &mut out);
            continue;
        }
        // 2. Pull a fresh batch from the global injector (blocks while
        //    the producer is still feeding an empty queue).
        match injector.pull(threads, cfg.injector_batch) {
            Pull::Tasks(tasks) => {
                out.stats.injector_batches += 1;
                lock_tolerant(&deques[wid]).extend(tasks);
                continue;
            }
            Pull::Drained => {}
        }
        // 3. Injector drained: steal half of the first non-empty other
        //    deque. A task observed in a deque is always completed by
        //    whichever worker holds it, so a full empty scan here means
        //    every remaining task is already running on some worker.
        let mut stole = false;
        for v in (0..threads).filter(|&v| v != wid) {
            let mut victim = lock_tolerant(&deques[v]);
            let len = victim.len();
            if len == 0 {
                continue;
            }
            let take = len.div_ceil(2);
            let stolen: Vec<usize> = victim.split_off(len - take).into();
            drop(victim);
            out.stats.tasks_stolen += take as u64;
            lock_tolerant(&deques[wid]).extend(stolen);
            stole = true;
            break;
        }
        if !stole {
            return out;
        }
    }
}

/// Runs tasks `0..n` across a work-stealing pool and returns the results
/// in **input order**: slot `i` always holds `task(i)`'s value, whatever
/// worker ran it and whenever it finished. With a deterministic task
/// function the entire outcome (slots, failures, cancellation set) is
/// therefore identical at every thread count — the property
/// `tests/exec_invariance.rs` pins end to end for `cs-bench`.
///
/// Each task runs under [`catch_unwind`]: a panic costs its own slot
/// (reported in [`ExecOutcome::failures`]) and, under
/// [`PanicPolicy::FailFast`], cooperatively cancels all not-yet-started
/// tasks. The scheduler never re-runs or reorders a claimed task.
pub fn run_indexed<T, F>(n: usize, cfg: &ExecConfig, task: F) -> ExecOutcome<T>
where
    F: Fn(usize) -> T + Sync,
    T: Send,
{
    let mut stats = ExecStats::default();
    if n == 0 {
        return ExecOutcome {
            slots: Vec::new(),
            failures: Vec::new(),
            cancelled: Vec::new(),
            stats,
        };
    }
    let threads = cfg.threads.clamp(1, n);
    let capacity = if cfg.injector_capacity > 0 {
        cfg.injector_capacity
    } else {
        (threads * 8).max(32)
    };
    let cfg = ExecConfig { threads, ..*cfg };
    // Pre-fill before any worker exists so first pulls see full batches.
    let prefill = n.min(capacity);
    let injector = Injector::new(0..prefill);
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    let cancelled = AtomicBool::new(false);

    let mut producer_cancelled: Vec<usize> = Vec::new();
    let worker_outs: Vec<WorkerOut<T>> = thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|wid| {
                let (injector, deques, cancelled, task) = (&injector, &deques, &cancelled, &task);
                s.spawn(move || worker_loop(wid, threads, cfg, injector, deques, cancelled, task))
            })
            .collect();
        // This thread is the producer: feed the remainder with
        // backpressure from the bounded queue.
        for i in prefill..n {
            if !injector.push_blocking(i, capacity, &cancelled) {
                producer_cancelled.extend(i..n);
                break;
            }
        }
        injector.close();
        handles
            .into_iter()
            // Per-task panics were caught inside the worker; a join
            // error means the scheduler itself crashed.
            .map(|h| h.join().expect("cs-exec worker harness panicked"))
            .collect()
    });

    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    let mut failures = Vec::new();
    let mut cancelled_ix = producer_cancelled;
    stats.cancelled += cancelled_ix.len() as u64;
    for out in worker_outs {
        stats.merge(&out.stats);
        for (i, v) in out.results {
            debug_assert!(slots[i].is_none(), "task {i} ran twice");
            slots[i] = Some(v);
        }
        failures.extend(out.failures);
        cancelled_ix.extend(out.cancelled);
    }
    stats.max_injector_depth = injector.max_depth() as u64;
    stats.threads = threads as u64;
    failures.sort_by_key(|f| f.index);
    cancelled_ix.sort_unstable();
    ExecOutcome {
        slots,
        failures,
        cancelled: cancelled_ix,
        stats,
    }
}

/// What one chunk worker hands back: `(index, result, task wall-clock)`.
type ChunkOut<T> = Vec<(usize, Result<T, TaskFailure>, f64)>;

/// The retired static-chunked scheduler, kept as the control arm of the
/// skew benchmark (`tests/exec_invariance.rs`) and for A/B measurements:
/// tasks are split into `threads` contiguous chunks up front and never
/// move, so one slow chunk bounds the sweep. Same result contract as
/// [`run_indexed`] (input-order slots, per-task panic isolation), no
/// stealing, no cancellation.
pub fn run_static_chunked<T, F>(n: usize, threads: usize, task: F) -> ExecOutcome<T>
where
    F: Fn(usize) -> T + Sync,
    T: Send,
{
    let mut stats = ExecStats::default();
    let threads = threads.clamp(1, n.max(1));
    stats.threads = threads as u64;
    let chunk = n.div_ceil(threads).max(1);
    let indices: Vec<usize> = (0..n).collect();
    let worker_outs: Vec<ChunkOut<T>> = thread::scope(|s| {
        let task = &task;
        let handles: Vec<_> = indices
            .chunks(chunk)
            .map(|ixs| {
                s.spawn(move || {
                    ixs.iter()
                        .map(|&i| {
                            let start = Instant::now();
                            let r = catch_unwind(AssertUnwindSafe(|| task(i))).map_err(|p| {
                                TaskFailure {
                                    index: i,
                                    message: panic_message(&*p),
                                }
                            });
                            (i, r, start.elapsed().as_secs_f64())
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("cs-exec chunk worker harness panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    let mut failures = Vec::new();
    for out in worker_outs {
        for (i, r, wall) in out {
            stats.tasks_run += 1;
            stats.task_wall_secs += wall;
            stats.max_task_secs = stats.max_task_secs.max(wall);
            match r {
                Ok(v) => slots[i] = Some(v),
                Err(f) => {
                    stats.panics += 1;
                    failures.push(f);
                }
            }
        }
    }
    failures.sort_by_key(|f| f.index);
    ExecOutcome {
        slots,
        failures,
        cancelled: Vec::new(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_land_in_input_order_at_any_thread_count() {
        for threads in [1, 2, 3, 8, 64] {
            let out = run_indexed(25, &ExecConfig::with_threads(threads), |i| i * 10);
            assert!(out.is_complete(), "threads={threads}");
            let got: Vec<usize> = out.slots.into_iter().map(Option::unwrap).collect();
            assert_eq!(got, (0..25).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_tasks_is_a_clean_no_op() {
        let out = run_indexed(0, &ExecConfig::default(), |i| i);
        assert!(out.slots.is_empty());
        assert!(out.is_complete());
        assert_eq!(out.stats.tasks_run, 0);
    }

    #[test]
    fn single_thread_runs_everything_in_process() {
        let out = run_indexed(7, &ExecConfig::with_threads(1), |i| i + 1);
        assert!(out.is_complete());
        assert_eq!(out.stats.tasks_run, 7);
        assert_eq!(out.stats.tasks_stolen, 0, "one worker has nobody to rob");
        assert_eq!(out.into_ok(), vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn panicking_task_costs_only_its_slot() {
        let out = run_indexed(6, &ExecConfig::with_threads(3), |i| {
            if i == 2 {
                panic!("task {i} exploded");
            }
            i
        });
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].index, 2);
        assert!(out.failures[0].message.contains("task 2 exploded"));
        assert!(out.cancelled.is_empty());
        assert_eq!(out.stats.panics, 1);
        let survivors: Vec<usize> = out.into_ok();
        assert_eq!(survivors, vec![0, 1, 3, 4, 5]);
    }

    #[test]
    fn fail_fast_cancels_unstarted_tasks() {
        // One worker, so everything after the panicking task is
        // deterministically unstarted when the flag trips.
        let out = run_indexed(8, &ExecConfig::with_threads(1).fail_fast(), |i| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].index, 3);
        assert_eq!(out.cancelled, vec![4, 5, 6, 7]);
        assert_eq!(out.stats.cancelled, 4);
        assert_eq!(out.into_ok(), vec![0, 1, 2]);
    }

    #[test]
    fn keep_going_runs_everything_despite_many_panics() {
        let out = run_indexed(12, &ExecConfig::with_threads(4), |i| {
            if i % 2 == 0 {
                panic!("even task");
            }
            i
        });
        assert_eq!(out.failures.len(), 6);
        assert_eq!(out.stats.tasks_run, 12);
        assert_eq!(out.into_ok(), vec![1, 3, 5, 7, 9, 11]);
    }

    #[test]
    fn straggler_deque_mates_are_stolen_not_stuck() {
        // Force batches of 4 with everything pre-filled: some worker's
        // first batch contains task 0 plus three deque-mates. Task 0
        // spins until every other task completes, which is only possible
        // if the other worker steals those deque-mates. If stealing were
        // broken this would deadlock (bounded by the spin cap).
        let n = 8;
        let done = AtomicUsize::new(0);
        let cfg = ExecConfig {
            threads: 2,
            injector_capacity: n,
            injector_batch: 4,
            ..ExecConfig::default()
        };
        let out = run_indexed(n, &cfg, |i| {
            if i == 0 {
                let start = Instant::now();
                while done.load(Ordering::SeqCst) < n - 1 {
                    assert!(
                        start.elapsed().as_secs() < 30,
                        "deque-mates of the straggler were never stolen"
                    );
                    std::hint::spin_loop();
                }
            }
            done.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert!(out.is_complete());
        assert!(
            out.stats.tasks_stolen > 0,
            "completion required stealing, stats must show it"
        );
    }

    #[test]
    fn static_chunked_control_arm_matches_results() {
        let ws = run_indexed(10, &ExecConfig::with_threads(3), |i| i * i);
        let st = run_static_chunked(10, 3, |i| i * i);
        let a: Vec<_> = ws.slots.into_iter().map(Option::unwrap).collect();
        let b: Vec<_> = st.slots.into_iter().map(Option::unwrap).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn injector_bound_backpressures_instead_of_buffering_everything() {
        let cfg = ExecConfig {
            threads: 2,
            injector_capacity: 4,
            ..ExecConfig::default()
        };
        let out = run_indexed(64, &cfg, |i| i);
        assert!(out.is_complete());
        assert!(
            out.stats.max_injector_depth <= 4,
            "bounded injector exceeded its capacity: {}",
            out.stats.max_injector_depth
        );
    }

    #[test]
    fn stats_flow_into_metrics_registry() {
        let out = run_indexed(5, &ExecConfig::with_threads(2), |i| i);
        let mut host = MetricsRegistry::new();
        out.stats.record_into(&mut host, "exec");
        assert_eq!(host.counter("exec.tasks"), 5);
        assert!(host.gauge("exec.threads") > 0.0);
    }
}
