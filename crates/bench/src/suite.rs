//! The cs-bench suite as a library: run a workload×mode matrix on the
//! `cs-exec` work-stealing pool (optionally with shared warmup
//! snapshots) and assemble the schema-versioned [`BenchReport`].
//!
//! Living in the library rather than the `cs-bench` binary lets
//! `tests/exec_invariance.rs` build the full BENCH document in-process
//! at several thread counts and assert byte-identity; the binary is a
//! thin CLI over [`run_suite`].

use crate::bench_report::{BenchReport, ModeSection};
use crate::exec::{run_indexed, ExecConfig, ExecStats};
use crate::journal::{Journal, JournalHeader};
use crate::runner::{
    checkpoint_key, load_checkpoint, store_checkpoint, warmup_insts, ExperimentConfig,
};
use crate::store::{shared_dir_store, ArtifactStore};
use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::{SimBuilder, SimReport};
use cleanupspec_mem::MemConfig;
use cleanupspec_obs::{MetricsRegistry, RingSink, Shared};
use cleanupspec_workloads::spec::{SpecWorkload, SPEC_WORKLOADS};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// CI-sized subset: one workload per behavior class (high-MLP, memory
/// bound, squash heavy, compute bound, mixed).
pub const SMOKE_WORKLOADS: [&str; 5] = ["gcc", "mcf", "lbm", "astar", "milc"];

/// Resolves [`SMOKE_WORKLOADS`] to their Table-3 definitions.
pub fn smoke_workloads() -> Vec<SpecWorkload> {
    SPEC_WORKLOADS
        .iter()
        .filter(|w| SMOKE_WORKLOADS.contains(&w.name))
        .copied()
        .collect()
}

/// One row of a mode sweep: (workload name, report, wall seconds, events
/// recorded, events dropped).
pub type RunRow = (String, SimReport, f64, u64, u64);

/// Where an unshared matrix cell's report came from.
enum RunSource {
    /// Simulated in this process.
    Fresh,
    /// Served from the cs-snap checkpoint cache.
    Checkpoint,
    /// Replayed from the campaign journal (resume).
    Journal,
}

/// Prints the standard early-stop warning for a truncated report.
fn warn_if_truncated(name: &str, mode: SecurityMode, report: &SimReport) {
    if let Some(stop) = report.stop.as_ref().filter(|s| !s.is_success()) {
        eprintln!(
            "warning: {name} under {} stopped early ({stop}); report is truncated",
            mode.name()
        );
    }
}

/// One workload×mode run with an events ring attached, timed on the host
/// wall clock. Returns (report, wall_secs, events_recorded,
/// events_dropped, served_from_checkpoint). A checkpoint hit skips the
/// simulation entirely, so its wall time is the file read and its event
/// counts are zero.
pub fn run_one(
    w: &SpecWorkload,
    mode: SecurityMode,
    cfg: &ExperimentConfig,
    ring_capacity: usize,
    checkpoint_dir: Option<&Path>,
) -> (SimReport, f64, u64, u64, bool) {
    let key = checkpoint_key(w, mode, cfg);
    if let Some(dir) = checkpoint_dir {
        let start = Instant::now();
        if let Some(report) = load_checkpoint(dir, &key) {
            return (report, start.elapsed().as_secs_f64(), 0, 0, true);
        }
    }
    let seed = cfg.seed ^ cleanupspec_mem::rng::mix_str(w.name);
    let ring = Shared::new(RingSink::new(ring_capacity));
    let mut sim = SimBuilder::new(mode)
        .program(w.build(seed))
        .seed(seed)
        .sink(Box::new(ring.clone()))
        .build();
    let start = Instant::now();
    sim.run_with_warmup(warmup_insts(cfg.insts), cfg.insts);
    let wall = start.elapsed().as_secs_f64();
    sim.finish_observer();
    let report = sim.report();
    warn_if_truncated(w.name, mode, &report);
    if let Some(dir) = checkpoint_dir {
        store_checkpoint(dir, &key, &report);
    }
    let (recorded, dropped) = ring.with(|s| (s.total_recorded(), s.dropped()));
    (report, wall, recorded, dropped, false)
}

/// Host-side accounting for `--shared-warmup`.
#[derive(Clone, Copy, Debug, Default)]
pub struct WarmupShareStats {
    /// Warmup phases actually simulated.
    pub warmups_run: u64,
    /// Warmup phases skipped because a class-mate's snapshot was forked.
    pub warmups_saved: u64,
    /// Wall seconds spent inside warmup simulation.
    pub warmup_wall: f64,
}

impl WarmupShareStats {
    fn merge(&mut self, other: WarmupShareStats) {
        self.warmups_run += other.warmups_run;
        self.warmups_saved += other.warmups_saved;
        self.warmup_wall += other.warmup_wall;
    }

    /// Estimated wall seconds saved by forking instead of re-warming.
    pub fn saved_secs_est(&self) -> f64 {
        if self.warmups_run == 0 {
            return 0.0;
        }
        self.warmup_wall / self.warmups_run as f64 * self.warmups_saved as f64
    }
}

/// Runs every mode for one workload, warming once per hardware
/// equivalence class and forking the warmed cs-snap snapshot per mode.
/// Returns one row per mode, in `modes` order.
///
/// Methodology caveat (also in EXPERIMENTS.md): the shared warmup phase
/// executes under the class representative's *scheme*, so modes whose
/// scheme shapes warmup-era cache contents (e.g. InvisiSpec) measure
/// from a slightly different warm state than an unshared run. Results
/// are deterministic and comparable across modes, but not bit-identical
/// to the default protocol — which is why this is opt-in and the CI
/// baseline is recorded without it.
fn run_workload_shared(
    w: &SpecWorkload,
    modes: &[SecurityMode],
    cfg: &ExperimentConfig,
    ring_capacity: usize,
) -> (Vec<RunRow>, WarmupShareStats) {
    let seed = cfg.seed ^ cleanupspec_mem::rng::mix_str(w.name);
    let warmup = warmup_insts(cfg.insts);
    let classes = SecurityMode::mem_config_classes(modes, &MemConfig::default());
    let mut stats = WarmupShareStats::default();
    let mut rows: Vec<(SecurityMode, RunRow)> = Vec::new();
    for class in &classes {
        let rep = class[0];
        let warm_start = Instant::now();
        let mut warm = SimBuilder::new(rep)
            .program(w.build(seed))
            .seed(seed)
            .build();
        let warm_stop = warm.run_insts(warmup);
        stats.warmup_wall += warm_start.elapsed().as_secs_f64();
        stats.warmups_run += 1;
        if !warm_stop.is_success() {
            // A truncated warmup cannot seed forks; fall back to the
            // unshared protocol so each mode reports its own stop reason.
            eprintln!(
                "warning: shared warmup of {} under {} stopped early ({warm_stop}); \
                 falling back to per-mode warmup for this class",
                w.name,
                rep.name()
            );
            for &m in class {
                let (r, wall, rec, drop, _) = run_one(w, m, cfg, ring_capacity, None);
                rows.push((m, (w.name.to_string(), r, wall, rec, drop)));
                stats.warmups_run += 1;
            }
            continue;
        }
        stats.warmups_saved += class.len() as u64 - 1;
        let snap = warm.snapshot();
        for &m in class {
            let ring = Shared::new(RingSink::new(ring_capacity));
            let start = Instant::now();
            let mut fork = snap.fork_for_mode(m);
            fork.set_sinks(vec![Box::new(ring.clone())]);
            fork.run_measure(cfg.insts);
            let wall = start.elapsed().as_secs_f64();
            fork.finish_observer();
            let report = fork.report();
            warn_if_truncated(w.name, m, &report);
            let (rec, drop) = ring.with(|s| (s.total_recorded(), s.dropped()));
            rows.push((m, (w.name.to_string(), report, wall, rec, drop)));
        }
    }
    // Classes interleave the mode order; restore it.
    let ordered = modes
        .iter()
        .map(|m| {
            let i = rows
                .iter()
                .position(|(rm, _)| rm == m)
                .expect("every mode ran exactly once");
            rows.remove(i).1
        })
        .collect();
    (ordered, stats)
}

/// How to run the suite matrix.
#[derive(Clone, Debug)]
pub struct SuiteOptions {
    /// Sizing (insts, seed, threads).
    pub cfg: ExperimentConfig,
    /// Modes to measure. `NonSecure` is forced in (first) as the
    /// slowdown baseline even when omitted.
    pub modes: Vec<SecurityMode>,
    /// Workloads to run.
    pub workloads: Vec<SpecWorkload>,
    /// Event-ring capacity per run.
    pub ring_capacity: usize,
    /// Warm once per hardware class and fork per mode (disables the
    /// checkpoint cache: its key describes the unshared protocol).
    pub shared_warmup: bool,
    /// cs-snap result cache directory.
    pub checkpoint_dir: Option<PathBuf>,
    /// Campaign directory holding the crash-safe journal. When set, a
    /// journal is opened (or resumed) there, completed cells are replayed
    /// without re-simulating, and every finished cell is recorded — so a
    /// killed suite can be rerun with the same directory and produce a
    /// byte-identical document. Ignored (with a warning) under
    /// `shared_warmup`, whose snapshot-forking protocol has no journaled
    /// per-cell results.
    pub resume_dir: Option<PathBuf>,
}

impl SuiteOptions {
    /// Suite over `modes`/`workloads` with default sizing, no sharing,
    /// no cache.
    pub fn new(modes: &[SecurityMode], workloads: &[SpecWorkload]) -> Self {
        SuiteOptions {
            cfg: ExperimentConfig::default(),
            modes: modes.to_vec(),
            workloads: workloads.to_vec(),
            ring_capacity: crate::cli::DEFAULT_RING_CAPACITY,
            shared_warmup: false,
            checkpoint_dir: None,
            resume_dir: None,
        }
    }

    /// The journal identity of this suite: everything that determines the
    /// *results* (sizing, modes, workloads) and nothing that only affects
    /// execution (threads, ring capacity), so an interrupted campaign may
    /// resume at a different parallelism.
    pub fn journal_header(&self) -> JournalHeader {
        let mut modes = self.modes.clone();
        modes.retain(|m| *m != SecurityMode::NonSecure);
        modes.insert(0, SecurityMode::NonSecure);
        let mode_names: Vec<&str> = modes.iter().map(|m| m.name()).collect();
        let workload_names: Vec<&str> = self.workloads.iter().map(|w| w.name).collect();
        JournalHeader {
            campaign: "cs-bench-suite".to_string(),
            config: format!(
                "insts={} seed={} warmup={} modes={} workloads={}",
                self.cfg.insts,
                self.cfg.seed,
                warmup_insts(self.cfg.insts),
                mode_names.join(","),
                workload_names.join(",")
            ),
        }
    }
}

/// Everything [`run_suite`] produced beyond the report itself.
#[derive(Debug)]
pub struct SuiteOutcome {
    /// The schema-versioned document (host metrics already recorded).
    pub report: BenchReport,
    /// The modes actually run, baseline first.
    pub modes: Vec<SecurityMode>,
    /// Names of workloads whose simulation panicked, per mode.
    pub failed: Vec<(SecurityMode, String)>,
    /// Runs served from the checkpoint cache.
    pub cache_hits: u64,
    /// Runs replayed from the campaign journal (resume).
    pub resumed: u64,
    /// Shared-warmup accounting (zero when not enabled).
    pub warmup: WarmupShareStats,
    /// Work-stealing pool counters.
    pub exec: ExecStats,
    /// Total events recorded / dropped across every ring.
    pub events: (u64, u64),
    /// End-to-end wall-clock of the sweep.
    pub wall_secs: f64,
}

/// Runs the whole matrix and assembles the [`BenchReport`].
///
/// The unshared path flattens modes×workloads into **one** task list on
/// the work-stealing pool (task `i` = mode `i / W`, workload `i % W`),
/// so a slow workload in one mode borrows idle workers from every other
/// mode. The shared-warmup path parallelizes over workloads (all modes
/// of a workload fork one warm snapshot on the same worker). Either
/// way, rows are regrouped to `[mode][workload]` in input order, so the
/// emitted document is identical at any thread count.
pub fn run_suite(opts: &SuiteOptions) -> SuiteOutcome {
    let cfg = opts.cfg;
    let baseline_mode = SecurityMode::NonSecure;
    let mut modes = opts.modes.clone();
    modes.retain(|m| *m != baseline_mode);
    modes.insert(0, baseline_mode);
    let workloads = &opts.workloads;
    let checkpoint_dir = opts
        .checkpoint_dir
        .as_deref()
        .filter(|_| !opts.shared_warmup);

    // Open (or resume) the campaign journal. A journal that belongs to a
    // different campaign is refused up front by the CLI preflight
    // (`journal::check_resume`); reaching that state through the library
    // degrades to running without a journal rather than mixing results.
    let journal: Option<Journal> = opts.resume_dir.as_deref().and_then(|dir| {
        if opts.shared_warmup {
            eprintln!(
                "warning: --resume is ignored with shared warmup \
                 (the snapshot-forking protocol has no journaled per-cell results)"
            );
            return None;
        }
        let store = shared_dir_store(dir) as std::sync::Arc<dyn ArtifactStore>;
        match Journal::open(store, &opts.journal_header()) {
            Ok(j) => Some(j),
            Err(e) => {
                eprintln!("warning: not journaling this campaign: {e}");
                None
            }
        }
    });

    let mut host = MetricsRegistry::new();
    let suite_start = Instant::now();
    let exec_cfg = ExecConfig {
        threads: cfg.threads,
        ..ExecConfig::default()
    };

    // Collect rows per mode (same order as `modes`), either by forking
    // shared warm snapshots or by independent per-mode runs.
    let mut warmup = WarmupShareStats::default();
    let mut failed: Vec<(SecurityMode, String)> = Vec::new();
    let mut cache_hits = 0u64;
    let mut resumed = 0u64;
    let (mut mode_rows, exec_stats): (Vec<Vec<RunRow>>, ExecStats) = if opts.shared_warmup {
        // One task per workload: all of its modes fork one warm snapshot.
        let outcome = run_indexed(workloads.len(), &exec_cfg, |wi| {
            run_workload_shared(&workloads[wi], &modes, &cfg, opts.ring_capacity)
        });
        for f in &outcome.failures {
            failed.push((baseline_mode, workloads[f.index].name.to_string()));
        }
        let mut per_workload: Vec<Vec<RunRow>> = Vec::new();
        for slot in outcome.slots.into_iter().flatten() {
            let (rows, s) = slot;
            warmup.merge(s);
            per_workload.push(rows);
        }
        // Transpose [workload][mode] -> [mode][workload].
        let per_mode = (0..modes.len())
            .map(|mi| per_workload.iter().map(|rows| rows[mi].clone()).collect())
            .collect();
        (per_mode, outcome.stats)
    } else {
        // One task per matrix cell: stealing balances across the whole
        // modes×workloads matrix, not within one mode at a time. With a
        // journal, completed cells replay from it (skipping simulation
        // entirely) and fresh completions are recorded as they land, so a
        // SIGKILL costs only the in-flight cells.
        let nw = workloads.len();
        let journal = journal.as_ref();
        let outcome = run_indexed(modes.len() * nw, &exec_cfg, |i| {
            let (mode, w) = (modes[i / nw], &workloads[i % nw]);
            let task_id = format!("{}/{}", mode.name(), w.name);
            if let Some(payload) = journal.and_then(|j| j.completed(&task_id)) {
                match cleanupspec_obs::JsonValue::parse(&payload)
                    .and_then(|v| cleanupspec::snap::parse_report(&v))
                {
                    Ok(r) => return ((w.name.to_string(), r, 0.0, 0, 0), RunSource::Journal),
                    Err(e) => {
                        eprintln!("warning: re-running {task_id}: journaled result unusable ({e})")
                    }
                }
            }
            let (r, wall, rec, drop, cached) =
                run_one(w, mode, &cfg, opts.ring_capacity, checkpoint_dir);
            if let Some(j) = journal {
                // Only completed (non-truncated) runs are replayable facts.
                if r.stop.as_ref().is_none_or(|s| s.is_success()) {
                    j.record(&task_id, &cleanupspec::snap::report_json(&r));
                }
            }
            let source = if cached {
                RunSource::Checkpoint
            } else {
                RunSource::Fresh
            };
            ((w.name.to_string(), r, wall, rec, drop), source)
        });
        for f in &outcome.failures {
            failed.push((
                modes[f.index / nw],
                workloads[f.index % nw].name.to_string(),
            ));
        }
        let mut slots = outcome.slots.into_iter();
        let per_mode = (0..modes.len())
            .map(|_| {
                (0..nw)
                    .filter_map(|_| slots.next().flatten())
                    .map(|(row, source)| {
                        match source {
                            RunSource::Fresh => {}
                            RunSource::Checkpoint => cache_hits += 1,
                            RunSource::Journal => resumed += 1,
                        }
                        row
                    })
                    .collect()
            })
            .collect();
        (per_mode, outcome.stats)
    };

    for (mode, name) in &failed {
        eprintln!(
            "warning: workload {name} panicked under {} and was dropped from the sweep",
            mode.name()
        );
    }

    // Host-side accounting, in the same shape cs-bench always emitted.
    if opts.shared_warmup {
        host.add_timing("warmup.shared", warmup.warmup_wall);
        host.add("warmup_runs", warmup.warmups_run);
        host.add("warmup_saved_runs", warmup.warmups_saved);
        if warmup.warmups_run > 0 {
            host.set_gauge("warmup_secs_saved_est", warmup.saved_secs_est());
        }
    } else {
        host.add("checkpoint_hits", cache_hits);
        host.add("journal_resumed", resumed);
    }
    for (mi, mode) in modes.iter().enumerate() {
        host.add_timing(
            &format!("mode.{}", mode.name()),
            mode_rows[mi].iter().map(|(_, _, wall, _, _)| wall).sum(),
        );
    }

    // Build sections, pairing each run with its baseline *by name*: a
    // workload that survived only some modes must not shift the
    // positional alignment of everything after it.
    let mut sections: Vec<ModeSection> = Vec::new();
    let mut baseline_named: Vec<(String, SimReport)> = Vec::new();
    let (mut total_insts, mut total_events, mut total_dropped) = (0u64, 0u64, 0u64);
    for (mi, mode) in modes.iter().enumerate() {
        let mut entries = Vec::new();
        for (name, report, wall, recorded, dropped) in mode_rows[mi].drain(..) {
            total_insts += report.total_insts();
            total_events += recorded;
            total_dropped += dropped;
            host.add("workloads_run", 1);
            entries.push((name, report, wall));
        }
        if *mode == baseline_mode {
            baseline_named = entries
                .iter()
                .map(|(n, r, _)| (n.clone(), r.clone()))
                .collect();
        }
        let mut aligned_base = Vec::new();
        entries.retain(
            |(name, _, _)| match baseline_named.iter().find(|(bn, _)| bn == name) {
                Some((_, base)) => {
                    aligned_base.push(base.clone());
                    true
                }
                None => {
                    eprintln!(
                        "warning: dropping {name} under {}: no {} baseline to compare against",
                        mode.name(),
                        baseline_mode.name()
                    );
                    false
                }
            },
        );
        sections.push(ModeSection::build(*mode, entries, &aligned_base));
    }
    let suite_wall = suite_start.elapsed().as_secs_f64();
    host.add_timing("suite", suite_wall);
    host.add("events_recorded", total_events);
    host.add("events_dropped", total_dropped);
    host.set_gauge("ring_capacity", opts.ring_capacity as f64);
    if suite_wall > 0.0 {
        host.set_gauge("sim_kips", total_insts as f64 / 1000.0 / suite_wall);
        host.set_gauge("events_per_sec", total_events as f64 / suite_wall);
    }
    // The pool's own counters land in the same host section.
    exec_stats.record_into(&mut host, "exec");

    let report = BenchReport {
        insts: cfg.insts,
        seed: cfg.seed,
        baseline_mode,
        modes: sections,
        host,
    };
    SuiteOutcome {
        report,
        modes,
        failed,
        cache_hits,
        resumed,
        warmup,
        exec: exec_stats,
        events: (total_events, total_dropped),
        wall_secs: suite_wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> SuiteOptions {
        let mut opts = SuiteOptions::new(&[SecurityMode::CleanupSpec], &SPEC_WORKLOADS[..3]);
        opts.cfg = ExperimentConfig {
            insts: 2_000,
            seed: 11,
            threads: 2,
        };
        opts
    }

    #[test]
    fn baseline_is_forced_in_first() {
        let out = run_suite(&tiny_opts());
        assert_eq!(out.modes[0], SecurityMode::NonSecure);
        assert_eq!(out.report.modes.len(), 2);
        assert_eq!(out.report.modes[0].mode, SecurityMode::NonSecure);
        assert_eq!(out.report.modes[1].mode, SecurityMode::CleanupSpec);
        for section in &out.report.modes {
            assert_eq!(section.entries.len(), 3);
        }
    }

    #[test]
    fn emitted_document_passes_its_own_check() {
        let out = run_suite(&tiny_opts());
        let doc = cleanupspec_obs::JsonValue::parse(&out.report.to_json()).unwrap();
        crate::bench_report::check_document(&doc).unwrap();
    }

    #[test]
    fn exec_counters_reach_the_host_section() {
        let out = run_suite(&tiny_opts());
        // 2 modes x 3 workloads = 6 pool tasks.
        assert_eq!(out.exec.tasks_run, 6);
        assert_eq!(out.report.host.counter("exec.tasks"), 6);
        assert_eq!(out.report.host.counter("workloads_run"), 6);
    }
}
