//! Differential CPI-stack attribution: given the same workload and seed
//! run under a baseline (NonSecure) and a secure scheme, diff the two
//! top-down cycle stacks to show *where the slowdown goes* — which
//! [`StallCause`] buckets absorb the extra cycles the scheme costs.
//!
//! Cycles are normalized to CPKI (cycles per kilo-instruction) before
//! differencing so runs of unequal length compare meaningfully: both
//! sides committed the same instruction budget, but the secure side took
//! more cycles to do it, and the CPKI delta per bucket attributes exactly
//! that surplus.

use cleanupspec::sim::SimReport;
use cleanupspec_core::stats::StallCause;

/// One row of an attribution diff: how a single stall bucket changed
/// between the baseline and the secure run.
#[derive(Clone, Copy, Debug)]
pub struct StackDelta {
    /// The stall bucket.
    pub cause: StallCause,
    /// Baseline cycles in this bucket (summed over cores).
    pub base_cycles: u64,
    /// Secure-run cycles in this bucket (summed over cores).
    pub secure_cycles: u64,
    /// Baseline cycles per kilo-instruction.
    pub base_cpki: f64,
    /// Secure-run cycles per kilo-instruction.
    pub secure_cpki: f64,
    /// `secure_cpki - base_cpki`; positive means the scheme added time
    /// here, negative means time moved out of this bucket.
    pub delta_cpki: f64,
}

/// Diffs two reports' CPI stacks, returning one row per [`StallCause`]
/// sorted by descending `delta_cpki` (largest added overhead first).
pub fn diff_stacks(base: &SimReport, secure: &SimReport) -> Vec<StackDelta> {
    let bs = base.cpi_stack();
    let ss = secure.cpi_stack();
    let bi = base.total_insts();
    let si = secure.total_insts();
    let mut rows: Vec<StackDelta> = StallCause::ALL
        .iter()
        .map(|&cause| {
            let b = bs.cpki(cause, bi);
            let s = ss.cpki(cause, si);
            StackDelta {
                cause,
                base_cycles: bs.get(cause),
                secure_cycles: ss.get(cause),
                base_cpki: b,
                secure_cpki: s,
                delta_cpki: s - b,
            }
        })
        .collect();
    rows.sort_by(|a, b| b.delta_cpki.total_cmp(&a.delta_cpki));
    rows
}

/// The top `n` buckets that *gained* time under the secure scheme — the
/// answer to "name the top overhead causes". Rows with a non-positive
/// delta (unchanged or improved) are excluded.
pub fn top_overheads(deltas: &[StackDelta], n: usize) -> Vec<StackDelta> {
    deltas
        .iter()
        .filter(|d| d.delta_cpki > 0.0)
        .take(n)
        .copied()
        .collect()
}

/// Sum of all positive deltas: total CPKI the scheme added, before the
/// buckets it relieved are netted off.
pub fn total_added_cpki(deltas: &[StackDelta]) -> f64 {
    deltas.iter().map(|d| d.delta_cpki.max(0.0)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleanupspec::modes::SecurityMode;
    use cleanupspec::sim::SimBuilder;
    use cleanupspec_workloads::spec::spec_workload;

    fn run(mode: SecurityMode) -> SimReport {
        let w = spec_workload("mcf").unwrap();
        let seed = 7 ^ cleanupspec_mem::rng::mix_str(w.name);
        let mut sim = SimBuilder::new(mode)
            .program(w.build(seed))
            .seed(seed)
            .build();
        sim.run_with_warmup(5_000, 20_000);
        sim.report()
    }

    #[test]
    fn diff_covers_every_cause_and_sorts_descending() {
        let base = run(SecurityMode::NonSecure);
        let secure = run(SecurityMode::CleanupSpec);
        let deltas = diff_stacks(&base, &secure);
        assert_eq!(deltas.len(), StallCause::ALL.len());
        for pair in deltas.windows(2) {
            assert!(pair[0].delta_cpki >= pair[1].delta_cpki);
        }
    }

    #[test]
    fn cleanupspec_overhead_has_named_nonzero_causes() {
        let base = run(SecurityMode::NonSecure);
        let secure = run(SecurityMode::CleanupSpec);
        assert!(
            secure.slowdown_vs(&base) > 1.0,
            "mcf under cleanupspec should be slower than non-secure"
        );
        let top = top_overheads(&diff_stacks(&base, &secure), 3);
        assert!(!top.is_empty(), "slowdown must be attributed somewhere");
        for d in &top {
            assert!(d.delta_cpki > 0.0);
            assert!(
                d.secure_cycles > 0,
                "top overhead {} has zero cycles",
                d.cause
            );
        }
    }

    #[test]
    fn identical_runs_diff_to_zero() {
        let a = run(SecurityMode::NonSecure);
        let b = run(SecurityMode::NonSecure);
        let deltas = diff_stacks(&a, &b);
        for d in &deltas {
            assert_eq!(d.base_cycles, d.secure_cycles, "{}", d.cause);
            assert_eq!(d.delta_cpki, 0.0);
        }
        assert_eq!(total_added_cpki(&deltas), 0.0);
    }
}
