//! Hardened artifact storage for campaign outputs.
//!
//! Every durable by-product of a campaign — checkpoint cache entries,
//! fuzz/chaos repro directories, BENCH documents, the campaign journal —
//! historically reached disk through ad-hoc `std::fs::write` calls with
//! three shared failure modes: torn files after a crash mid-write, silent
//! data loss when the directory is unwritable, and a tmp-file name race
//! between parallel sweep workers. This module centralises those writes
//! behind one [`ArtifactStore`] trait with a hardened default backend
//! ([`DirStore`]):
//!
//! - **Atomicity** — unique tmp name per writer (pid + per-store counter),
//!   write, fsync, rename. Readers never observe a half-written artifact.
//! - **Integrity** — every `put` leaves an FNV-1a-64 sidecar
//!   (`<name>.fnv`); `get` verifies it and *quarantines* a corrupt file
//!   (moves it under `quarantine/`) instead of panicking or serving
//!   garbage.
//! - **Retry** — transient errors (`Interrupted` / `WouldBlock` /
//!   `TimedOut`) are retried a bounded number of times with jittered
//!   exponential backoff.
//! - **Degradation** — the first hard write failure flips the store into
//!   an in-memory overlay with a one-time warning; the campaign finishes
//!   (results survive in memory for the final report) instead of dying
//!   mid-flight on ENOSPC or a read-only directory.
//!
//! For testing the recovery paths there is a deterministic, seedable
//! host-I/O fault injector ([`FaultFs`]) — the host-side sibling of the
//! simulator-level `cs-chaos` fault layer — which fires one of
//! [`HostFaultKind`]'s fault classes at a chosen operation and lets the
//! durability suite prove every class is retried, quarantined, or
//! degraded (see `journal::host_fault_matrix`).

use std::collections::HashMap;
use std::io::{self, ErrorKind, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use cleanupspec::snap::fnv1a64;

/// Maximum write/read attempts for one logical operation (1 initial try
/// plus up to 3 retries of transient errors).
const MAX_ATTEMPTS: u32 = 4;

/// Errors surfaced by [`ArtifactStore`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The named artifact does not exist.
    NotFound(String),
    /// The artifact exists but failed its integrity check; it has been
    /// quarantined and will not be served.
    Corrupt {
        /// Store-relative artifact name.
        name: String,
        /// Human-readable mismatch description.
        detail: String,
    },
    /// A host I/O error that survived the bounded retry policy.
    Io {
        /// Store-relative artifact name.
        name: String,
        /// Human-readable error description.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound(name) => write!(f, "artifact not found: {name}"),
            StoreError::Corrupt { name, detail } => {
                write!(f, "artifact corrupt (quarantined): {name}: {detail}")
            }
            StoreError::Io { name, detail } => write!(f, "artifact I/O error: {name}: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// A named blob store for campaign artifacts.
///
/// Names are store-relative paths (`/`-separated, may contain
/// subdirectories, e.g. `seed-0x2-clean/repro.txt`). Implementations must
/// be safe to share across sweep worker threads.
pub trait ArtifactStore: Send + Sync {
    /// Human-readable location of the store (for diagnostics).
    fn label(&self) -> String;

    /// Durably writes `bytes` under `name`, atomically replacing any
    /// previous version. Parent directories are created on demand.
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError>;

    /// Reads the artifact back, verifying its integrity sidecar when one
    /// is present.
    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError>;

    /// Appends `line` plus a trailing newline to the artifact, creating
    /// it if absent. Used for the append-only campaign journal.
    fn append_line(&self, name: &str, line: &str) -> Result<(), StoreError>;

    /// Whether an artifact with this name currently exists.
    fn exists(&self, name: &str) -> bool;

    /// Whether writes outlive the process (false once a store has
    /// degraded to its in-memory overlay, and always false for
    /// [`MemStore`]).
    fn persistent(&self) -> bool;

    /// Moves a damaged artifact out of the way so it is never served
    /// again. Best-effort; the default implementation does nothing.
    fn quarantine(&self, _name: &str, _reason: &str) {}
}

/// Aggregate counters describing how often the hardening machinery has
/// engaged. Exposed so tests (and the host fault matrix) can classify a
/// store's reaction to an injected fault.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Individual retry attempts performed after transient errors.
    pub retries: u64,
    /// Logical operations that ultimately succeeded after >= 1 retry.
    pub retried_ok: u64,
    /// Artifacts moved to `quarantine/` after an integrity mismatch.
    pub quarantined: u64,
    /// Writes absorbed by the in-memory overlay after degradation.
    pub degraded_writes: u64,
}

// ---------------------------------------------------------------------------
// Raw filesystem layer (real + fault-injecting)
// ---------------------------------------------------------------------------

/// The primitive host-filesystem operations [`DirStore`] is built from.
/// Abstracted so [`FaultFs`] can interpose deterministic faults on each
/// class of operation.
trait RawFs: Send + Sync {
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    fn fsync(&self, path: &Path) -> io::Result<()>;
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    fn remove(&self, path: &Path) -> io::Result<()>;
    fn exists(&self, path: &Path) -> bool;
}

/// Pass-through [`RawFs`] over `std::fs`.
struct RealFs;

impl RawFs for RealFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)?;
        f.write_all(bytes)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

// ---------------------------------------------------------------------------
// DirStore: the hardened directory-backed store
// ---------------------------------------------------------------------------

struct DirState {
    /// `Some` once the store has degraded: all subsequent writes land in
    /// this overlay instead of the filesystem.
    overlay: Option<HashMap<String, Vec<u8>>>,
    warned_degraded: bool,
    stats: StoreStats,
}

/// The hardened directory-backed [`ArtifactStore`] (see module docs for
/// the full policy: atomic writes, checksum sidecars, quarantine, retry,
/// in-memory degradation).
pub struct DirStore {
    root: PathBuf,
    fs: Arc<dyn RawFs>,
    tmp_counter: AtomicU64,
    state: Mutex<DirState>,
}

/// Suffix of the integrity sidecar written next to every artifact.
pub const SIDECAR_SUFFIX: &str = ".fnv";

/// Subdirectory (relative to the store root) where corrupt artifacts are
/// moved instead of being served or deleted.
pub const QUARANTINE_DIR: &str = "quarantine";

impl DirStore {
    /// Creates a store rooted at `root` over the real filesystem. The
    /// directory is created lazily on first write.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        DirStore::with_fs(root.into(), Arc::new(RealFs))
    }

    fn with_fs(root: PathBuf, fs: Arc<dyn RawFs>) -> Self {
        DirStore {
            root,
            fs,
            tmp_counter: AtomicU64::new(0),
            state: Mutex::new(DirState {
                overlay: None,
                warned_degraded: false,
                stats: StoreStats::default(),
            }),
        }
    }

    /// Hardening counters accumulated so far.
    pub fn stats(&self) -> StoreStats {
        self.state.lock().expect("store lock").stats
    }

    /// Whether the store has fallen back to its in-memory overlay.
    pub fn is_degraded(&self) -> bool {
        self.state.lock().expect("store lock").overlay.is_some()
    }

    fn path_of(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// Classifies an error as worth retrying. Short/torn writes
    /// (`WriteZero`) are retryable because the atomic protocol rewrites
    /// the whole tmp file from scratch on every attempt.
    fn transient(kind: ErrorKind) -> bool {
        matches!(
            kind,
            ErrorKind::Interrupted
                | ErrorKind::WouldBlock
                | ErrorKind::TimedOut
                | ErrorKind::WriteZero
        )
    }

    /// Runs `op` with bounded retry of transient errors. Backoff is
    /// exponential from 200 us with a small deterministic jitter (hashed
    /// from the operation description) so parallel workers decorrelate
    /// without a shared clock or RNG.
    fn with_retry<T>(&self, desc: &str, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let mut attempt: u32 = 0;
        loop {
            match op() {
                Ok(v) => {
                    if attempt > 0 {
                        self.state.lock().expect("store lock").stats.retried_ok += 1;
                    }
                    return Ok(v);
                }
                Err(e) if Self::transient(e.kind()) && attempt + 1 < MAX_ATTEMPTS => {
                    self.state.lock().expect("store lock").stats.retries += 1;
                    let jitter = fnv1a64(format!("{desc}#{attempt}").as_bytes()) % 100;
                    let backoff_us = (200u64 << attempt) + jitter;
                    std::thread::sleep(std::time::Duration::from_micros(backoff_us));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Ensures `path`'s parent directory chain exists.
    fn ensure_parent(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                self.with_retry("mkdir", || self.fs.create_dir_all(parent))?;
            }
        }
        Ok(())
    }

    /// Write + fsync + rename with a tmp name unique to this writer
    /// (pid + store-local counter), so parallel sweep workers storing the
    /// same artifact can never clobber each other's tmp file.
    fn atomic_write(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let path = self.path_of(name);
        self.ensure_parent(&path)?;
        let leaf = path
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "artifact".to_string());
        let unique = self.tmp_counter.fetch_add(1, Ordering::Relaxed);
        let tmp = path.with_file_name(format!(".{leaf}.tmp-{}-{unique}", std::process::id()));
        let result = self.with_retry(name, || {
            self.fs.write(&tmp, bytes)?;
            self.fs.fsync(&tmp)?;
            self.fs.rename(&tmp, &path)
        });
        if result.is_err() {
            let _ = self.fs.remove(&tmp);
        }
        result
    }

    /// Flips the store into in-memory mode (idempotent), warning once.
    fn degrade(&self, why: &str) {
        let mut st = self.state.lock().expect("store lock");
        if st.overlay.is_none() {
            st.overlay = Some(HashMap::new());
        }
        if !st.warned_degraded {
            st.warned_degraded = true;
            eprintln!(
                "warning: artifact store {} is unwritable ({why}); \
                 continuing with in-memory results (they will not survive this process)",
                self.root.display()
            );
        }
    }

    fn sidecar_name(name: &str) -> String {
        format!("{name}{SIDECAR_SUFFIX}")
    }
}

impl ArtifactStore for DirStore {
    fn label(&self) -> String {
        self.root.display().to_string()
    }

    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        {
            let mut st = self.state.lock().expect("store lock");
            if let Some(overlay) = st.overlay.as_mut() {
                overlay.insert(name.to_string(), bytes.to_vec());
                st.stats.degraded_writes += 1;
                return Ok(());
            }
        }
        if let Err(e) = self.atomic_write(name, bytes) {
            self.degrade(&e.to_string());
            let mut st = self.state.lock().expect("store lock");
            if let Some(overlay) = st.overlay.as_mut() {
                overlay.insert(name.to_string(), bytes.to_vec());
                st.stats.degraded_writes += 1;
            }
            return Ok(());
        }
        // The payload is durable; now leave its checksum sidecar. A
        // sidecar failure must not lose the payload, but a *stale*
        // sidecar would quarantine the fresh payload on the next read, so
        // remove any previous one if the new one cannot be written.
        let digest = format!("{:016x}", fnv1a64(bytes));
        let sidecar = Self::sidecar_name(name);
        if self.atomic_write(&sidecar, digest.as_bytes()).is_err() {
            let _ = self.fs.remove(&self.path_of(&sidecar));
        }
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        {
            let st = self.state.lock().expect("store lock");
            if let Some(overlay) = st.overlay.as_ref() {
                if let Some(bytes) = overlay.get(name) {
                    return Ok(bytes.clone());
                }
            }
        }
        let path = self.path_of(name);
        let payload = self.with_retry(name, || self.fs.read(&path)).map_err(|e| {
            if e.kind() == ErrorKind::NotFound {
                StoreError::NotFound(name.to_string())
            } else {
                StoreError::Io {
                    name: name.to_string(),
                    detail: e.to_string(),
                }
            }
        })?;
        // Verify the sidecar when one is present. A missing (or
        // unreadable) sidecar is tolerated: journals and pre-hardening
        // artifacts legitimately have none.
        let sidecar_path = self.path_of(&Self::sidecar_name(name));
        if let Ok(sidecar) = self.fs.read(&sidecar_path) {
            let want = String::from_utf8_lossy(&sidecar).trim().to_string();
            let got = format!("{:016x}", fnv1a64(&payload));
            if want.len() == 16 && want != got {
                let detail = format!("checksum mismatch: sidecar {want}, payload {got}");
                self.quarantine(name, &detail);
                return Err(StoreError::Corrupt {
                    name: name.to_string(),
                    detail,
                });
            }
        }
        Ok(payload)
    }

    fn append_line(&self, name: &str, line: &str) -> Result<(), StoreError> {
        let framed = format!("{line}\n");
        {
            let mut st = self.state.lock().expect("store lock");
            if let Some(overlay) = st.overlay.as_mut() {
                overlay
                    .entry(name.to_string())
                    .or_default()
                    .extend_from_slice(framed.as_bytes());
                st.stats.degraded_writes += 1;
                return Ok(());
            }
        }
        let path = self.path_of(name);
        let appended = self.ensure_parent(&path).and_then(|()| {
            self.with_retry(name, || {
                self.fs.append(&path, framed.as_bytes())?;
                self.fs.fsync(&path)
            })
        });
        if let Err(e) = appended {
            // The append may or may not have reached the disk (e.g. the
            // fsync failed after a successful append). Seed the overlay
            // from whatever is durably on disk, truncated to the last
            // complete line, and only re-add our line if it is not
            // already the tail — so degradation neither loses nor
            // duplicates a journal record.
            self.degrade(&e.to_string());
            let mut seed = self.fs.read(&path).unwrap_or_default();
            if let Some(last_nl) = seed.iter().rposition(|&b| b == b'\n') {
                seed.truncate(last_nl + 1);
            } else {
                seed.clear();
            }
            if !seed.ends_with(framed.as_bytes()) {
                seed.extend_from_slice(framed.as_bytes());
            }
            let mut st = self.state.lock().expect("store lock");
            if let Some(overlay) = st.overlay.as_mut() {
                overlay.insert(name.to_string(), seed);
                st.stats.degraded_writes += 1;
            }
        }
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        {
            let st = self.state.lock().expect("store lock");
            if let Some(overlay) = st.overlay.as_ref() {
                if overlay.contains_key(name) {
                    return true;
                }
            }
        }
        self.fs.exists(&self.path_of(name))
    }

    fn persistent(&self) -> bool {
        !self.is_degraded()
    }

    fn quarantine(&self, name: &str, reason: &str) {
        let qdir = self.root.join(QUARANTINE_DIR);
        let flat = name.replace(['/', '\\'], "__");
        let _ = self.fs.create_dir_all(&qdir);
        let _ = self.fs.rename(&self.path_of(name), &qdir.join(&flat));
        let _ = self.fs.rename(
            &self.path_of(&Self::sidecar_name(name)),
            &qdir.join(format!("{flat}{SIDECAR_SUFFIX}")),
        );
        self.state.lock().expect("store lock").stats.quarantined += 1;
        eprintln!(
            "warning: quarantined corrupt artifact {name} in {} ({reason})",
            self.root.display()
        );
    }
}

/// Returns the process-wide shared [`DirStore`] for `dir`, creating it on
/// first use. Sharing one store per directory gives all writers (sweep
/// workers, the journal, repro dumps) a common degradation state and a
/// single one-time warning instead of one per call site.
pub fn shared_dir_store(dir: &Path) -> Arc<DirStore> {
    static REGISTRY: OnceLock<Mutex<HashMap<PathBuf, Arc<DirStore>>>> = OnceLock::new();
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = registry.lock().expect("store registry lock");
    map.entry(dir.to_path_buf())
        .or_insert_with(|| Arc::new(DirStore::new(dir)))
        .clone()
}

// ---------------------------------------------------------------------------
// MemStore: pure in-memory store (tests, explicit non-durable runs)
// ---------------------------------------------------------------------------

/// A purely in-memory [`ArtifactStore`] — nothing survives the process.
/// Used in tests and as the conceptual target of [`DirStore`]'s
/// degradation mode.
#[derive(Default)]
pub struct MemStore {
    map: Mutex<HashMap<String, Vec<u8>>>,
}

impl MemStore {
    /// Creates an empty in-memory store.
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl ArtifactStore for MemStore {
    fn label(&self) -> String {
        "(in-memory)".to_string()
    }

    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.map
            .lock()
            .expect("mem store lock")
            .insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        self.map
            .lock()
            .expect("mem store lock")
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(name.to_string()))
    }

    fn append_line(&self, name: &str, line: &str) -> Result<(), StoreError> {
        let mut map = self.map.lock().expect("mem store lock");
        let entry = map.entry(name.to_string()).or_default();
        entry.extend_from_slice(line.as_bytes());
        entry.push(b'\n');
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        self.map.lock().expect("mem store lock").contains_key(name)
    }

    fn persistent(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Host-I/O fault injection
// ---------------------------------------------------------------------------

/// The host-I/O fault classes [`FaultFs`] can inject — the durability
/// suite proves each one is retried, quarantined, or degraded without
/// corrupting the journal or losing completed-task results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostFaultKind {
    /// One-shot `EINTR`-style failure on a write; must be absorbed by
    /// the retry policy.
    TransientWrite,
    /// Persistent "no space left on device" on every write from the
    /// firing point on; must degrade to the in-memory overlay.
    Enospc,
    /// One-shot torn write: half the payload lands, then the write
    /// fails. The atomic tmp+rename protocol must keep the torn bytes
    /// from ever appearing under the final name.
    TornWrite,
    /// Silent single-byte corruption of a payload that reports success;
    /// must be caught by the checksum sidecar and quarantined on read.
    BitRot,
    /// Persistent `EIO` on reads; must be treated as a cache miss, never
    /// served as data.
    ReadEio,
    /// Persistent rename failure (the commit point of an atomic write);
    /// must degrade without exposing a partial artifact.
    RenameFail,
    /// Persistent fsync failure; must degrade (durability can no longer
    /// be promised) without losing the in-flight artifact.
    FsyncFail,
    /// The write at the firing point completes durably, then the
    /// "machine" crashes: every later operation fails. A restart against
    /// the same directory must recover all completed work.
    CrashAfterWrite,
}

impl HostFaultKind {
    /// Every injectable fault class, in matrix order.
    pub const ALL: [HostFaultKind; 8] = [
        HostFaultKind::TransientWrite,
        HostFaultKind::Enospc,
        HostFaultKind::TornWrite,
        HostFaultKind::BitRot,
        HostFaultKind::ReadEio,
        HostFaultKind::RenameFail,
        HostFaultKind::FsyncFail,
        HostFaultKind::CrashAfterWrite,
    ];

    /// Stable lowercase identifier (CLI and matrix rows).
    pub fn name(self) -> &'static str {
        match self {
            HostFaultKind::TransientWrite => "transient-write",
            HostFaultKind::Enospc => "enospc",
            HostFaultKind::TornWrite => "torn-write",
            HostFaultKind::BitRot => "bit-rot",
            HostFaultKind::ReadEio => "read-eio",
            HostFaultKind::RenameFail => "rename-fail",
            HostFaultKind::FsyncFail => "fsync-fail",
            HostFaultKind::CrashAfterWrite => "crash-after-write",
        }
    }

    /// Whether the fault keeps firing once triggered (vs. one-shot).
    fn persistent_fault(self) -> bool {
        matches!(
            self,
            HostFaultKind::Enospc
                | HostFaultKind::ReadEio
                | HostFaultKind::RenameFail
                | HostFaultKind::FsyncFail
        )
    }

    fn op_class(self) -> OpClass {
        match self {
            HostFaultKind::TransientWrite
            | HostFaultKind::Enospc
            | HostFaultKind::TornWrite
            | HostFaultKind::BitRot
            | HostFaultKind::CrashAfterWrite => OpClass::Write,
            HostFaultKind::ReadEio => OpClass::Read,
            HostFaultKind::RenameFail => OpClass::Rename,
            HostFaultKind::FsyncFail => OpClass::Fsync,
        }
    }

    fn error(self) -> io::Error {
        match self {
            HostFaultKind::TransientWrite => {
                io::Error::new(ErrorKind::Interrupted, "interrupted system call (injected)")
            }
            HostFaultKind::Enospc => io::Error::other("ENOSPC: no space left on device (injected)"),
            HostFaultKind::ReadEio => io::Error::other("EIO: input/output error (injected)"),
            HostFaultKind::RenameFail => io::Error::other("rename failed (injected)"),
            HostFaultKind::FsyncFail => io::Error::other("fsync failed (injected)"),
            HostFaultKind::TornWrite => {
                io::Error::new(ErrorKind::WriteZero, "torn write (injected)")
            }
            HostFaultKind::BitRot | HostFaultKind::CrashAfterWrite => {
                io::Error::other("unreachable: silent fault kinds carry no error")
            }
        }
    }
}

/// When a planned fault fires: at the `fire_at`-th opportunity (0-based)
/// of the fault's operation class.
#[derive(Debug, Clone, Copy)]
pub struct HostFaultPlan {
    /// Which fault class to inject.
    pub kind: HostFaultKind,
    /// 0-based index of the operation (within the kind's class) at which
    /// the fault first fires.
    pub fire_at: u64,
}

impl HostFaultPlan {
    /// Derives a deterministic firing point from a campaign seed, giving
    /// property tests cheap plan diversity without a host RNG.
    pub fn seeded(kind: HostFaultKind, seed: u64) -> Self {
        let h = fnv1a64(format!("{}:{seed}", kind.name()).as_bytes());
        HostFaultPlan {
            kind,
            fire_at: h % 2,
        }
    }
}

#[derive(Clone, Copy)]
enum OpClass {
    Write,
    Read,
    Rename,
    Fsync,
}

impl OpClass {
    fn index(self) -> usize {
        match self {
            OpClass::Write => 0,
            OpClass::Read => 1,
            OpClass::Rename => 2,
            OpClass::Fsync => 3,
        }
    }
}

/// What the injector tells the faulty filesystem to do for one operation.
enum Action {
    Pass,
    Fail(io::Error),
    Torn,
    Rot,
    CrashArm,
}

#[derive(Default)]
struct InjectorState {
    /// Opportunities seen per op class (write/read/rename/fsync).
    counts: [u64; 4],
    fired: u64,
    done: bool,
    crashed: bool,
}

/// Deterministic fault scheduler shared between a [`FaultFs`] and the
/// test observing it.
pub struct Injector {
    plan: HostFaultPlan,
    state: Mutex<InjectorState>,
}

impl Injector {
    fn new(plan: HostFaultPlan) -> Self {
        Injector {
            plan,
            state: Mutex::new(InjectorState::default()),
        }
    }

    fn tick(&self, class: OpClass) -> Action {
        let mut st = self.state.lock().expect("injector lock");
        if st.crashed {
            return Action::Fail(io::Error::other("simulated post-write crash (injected)"));
        }
        let idx = st.counts[class.index()];
        st.counts[class.index()] += 1;
        let kind = self.plan.kind;
        if kind.op_class().index() != class.index() {
            return Action::Pass;
        }
        if st.done && !kind.persistent_fault() {
            return Action::Pass;
        }
        if idx < self.plan.fire_at {
            return Action::Pass;
        }
        st.fired += 1;
        st.done = true;
        match kind {
            HostFaultKind::TornWrite => Action::Torn,
            HostFaultKind::BitRot => Action::Rot,
            HostFaultKind::CrashAfterWrite => Action::CrashArm,
            other => Action::Fail(other.error()),
        }
    }

    fn arm_crash(&self) {
        self.state.lock().expect("injector lock").crashed = true;
    }

    /// How many times the planned fault has fired so far.
    pub fn fires(&self) -> u64 {
        self.state.lock().expect("injector lock").fired
    }

    /// Total operations (across all classes) the injector has observed.
    pub fn opportunities(&self) -> u64 {
        self.state
            .lock()
            .expect("injector lock")
            .counts
            .iter()
            .sum()
    }
}

/// [`RawFs`] wrapper that consults an [`Injector`] before every
/// operation.
struct FaultyFs {
    inner: Arc<dyn RawFs>,
    inj: Arc<Injector>,
}

impl FaultyFs {
    fn write_like(&self, path: &Path, bytes: &[u8], append: bool) -> io::Result<()> {
        let run = |payload: &[u8]| -> io::Result<()> {
            if append {
                self.inner.append(path, payload)
            } else {
                self.inner.write(path, payload)
            }
        };
        match self.inj.tick(OpClass::Write) {
            Action::Pass => run(bytes),
            Action::Fail(e) => Err(e),
            Action::Torn => {
                let _ = run(&bytes[..bytes.len() / 2]);
                Err(HostFaultKind::TornWrite.error())
            }
            Action::Rot => {
                let mut rotten = bytes.to_vec();
                let mid = rotten.len() / 2;
                if let Some(b) = rotten.get_mut(mid) {
                    *b ^= 0x40;
                }
                run(&rotten)
            }
            Action::CrashArm => {
                run(bytes)?;
                self.inj.arm_crash();
                Ok(())
            }
        }
    }
}

impl RawFs for FaultyFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        // Directory creation is not a modelled fault site.
        self.inner.create_dir_all(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.write_like(path, bytes, false)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        match self.inj.tick(OpClass::Fsync) {
            Action::Pass => self.inner.fsync(path),
            Action::Fail(e) => Err(e),
            // Torn/Rot/CrashArm only apply to writes; treat as pass-through.
            _ => self.inner.fsync(path),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.inj.tick(OpClass::Rename) {
            Action::Pass => self.inner.rename(from, to),
            Action::Fail(e) => Err(e),
            _ => self.inner.rename(from, to),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.inj.tick(OpClass::Read) {
            Action::Pass => self.inner.read(path),
            Action::Fail(e) => Err(e),
            _ => self.inner.read(path),
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.write_like(path, bytes, true)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        // Cleanup of tmp files is best-effort everywhere; not a fault site.
        self.inner.remove(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

/// A [`DirStore`] whose host filesystem injects one planned fault — the
/// deterministic, seedable host-I/O chaos backend behind
/// `cs-chaos --host-matrix` and the durability property tests.
pub struct FaultFs {
    store: DirStore,
    inj: Arc<Injector>,
}

impl FaultFs {
    /// Creates a faulting store rooted at `root` with the given plan.
    pub fn new(root: impl Into<PathBuf>, plan: HostFaultPlan) -> Self {
        let inj = Arc::new(Injector::new(plan));
        let fs = Arc::new(FaultyFs {
            inner: Arc::new(RealFs),
            inj: Arc::clone(&inj),
        });
        FaultFs {
            store: DirStore::with_fs(root.into(), fs),
            inj,
        }
    }

    /// How many times the planned fault has fired.
    pub fn fires(&self) -> u64 {
        self.inj.fires()
    }

    /// Total raw-filesystem operations observed.
    pub fn opportunities(&self) -> u64 {
        self.inj.opportunities()
    }

    /// Hardening counters of the wrapped store.
    pub fn stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Whether the wrapped store has degraded to its in-memory overlay.
    pub fn is_degraded(&self) -> bool {
        self.store.is_degraded()
    }
}

impl ArtifactStore for FaultFs {
    fn label(&self) -> String {
        format!(
            "{} (faults: {})",
            self.store.label(),
            self.inj.plan.kind.name()
        )
    }

    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.store.put(name, bytes)
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        self.store.get(name)
    }

    fn append_line(&self, name: &str, line: &str) -> Result<(), StoreError> {
        self.store.append_line(name, line)
    }

    fn exists(&self, name: &str) -> bool {
        self.store.exists(name)
    }

    fn persistent(&self) -> bool {
        self.store.persistent()
    }

    fn quarantine(&self, name: &str, reason: &str) {
        self.store.quarantine(name, reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cs-store-{tag}-{}-{:x}",
            std::process::id(),
            fnv1a64(tag.as_bytes())
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("mk tmpdir");
        d
    }

    #[test]
    fn put_get_roundtrip_with_sidecar() {
        let d = tmpdir("roundtrip");
        let s = DirStore::new(&d);
        s.put("a/b.json", b"{\"x\": 1}").unwrap();
        assert_eq!(s.get("a/b.json").unwrap(), b"{\"x\": 1}");
        assert!(d.join("a/b.json.fnv").exists(), "sidecar written");
        assert!(s.exists("a/b.json"));
        assert!(s.persistent());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn corrupt_payload_is_quarantined_not_served() {
        let d = tmpdir("quarantine");
        let s = DirStore::new(&d);
        s.put("r.json", b"good bytes").unwrap();
        std::fs::write(d.join("r.json"), b"evil bytes").unwrap();
        match s.get("r.json") {
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert!(!d.join("r.json").exists(), "payload moved out of the way");
        assert!(
            d.join(QUARANTINE_DIR).join("r.json").exists(),
            "payload preserved in quarantine for post-mortem"
        );
        assert_eq!(s.stats().quarantined, 1);
        // A quarantined artifact reads as missing afterwards.
        assert!(matches!(s.get("r.json"), Err(StoreError::NotFound(_))));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_sidecar_is_tolerated() {
        let d = tmpdir("nosidecar");
        std::fs::write(d.join("legacy.json"), b"old artifact").unwrap();
        let s = DirStore::new(&d);
        assert_eq!(s.get("legacy.json").unwrap(), b"old artifact");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn unwritable_root_degrades_to_memory_and_keeps_results() {
        // Running as root makes chmod-based readonly dirs useless, so
        // force the failure structurally: the "directory" is a file.
        let d = tmpdir("degrade");
        let root = d.join("blocked");
        std::fs::write(&root, b"i am a file, not a directory").unwrap();
        let s = DirStore::new(root.join("sub"));
        s.put("x.json", b"payload").unwrap();
        assert!(s.is_degraded());
        assert!(!s.persistent());
        assert_eq!(s.get("x.json").unwrap(), b"payload");
        assert!(s.stats().degraded_writes >= 1);
        // Appends keep working in memory too.
        s.append_line("j.csj", "line-1").unwrap();
        s.append_line("j.csj", "line-2").unwrap();
        assert_eq!(s.get("j.csj").unwrap(), b"line-1\nline-2\n");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn transient_write_fault_is_retried() {
        let d = tmpdir("transient");
        let f = FaultFs::new(
            &d,
            HostFaultPlan {
                kind: HostFaultKind::TransientWrite,
                fire_at: 0,
            },
        );
        f.put("a.json", b"abc").unwrap();
        assert_eq!(f.fires(), 1);
        assert!(f.stats().retried_ok >= 1, "{:?}", f.stats());
        assert!(!f.is_degraded());
        assert_eq!(f.get("a.json").unwrap(), b"abc");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn enospc_degrades_without_losing_the_write() {
        let d = tmpdir("enospc");
        let f = FaultFs::new(
            &d,
            HostFaultPlan {
                kind: HostFaultKind::Enospc,
                fire_at: 0,
            },
        );
        f.put("a.json", b"abc").unwrap();
        assert!(f.is_degraded());
        assert_eq!(f.get("a.json").unwrap(), b"abc");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_write_never_exposes_partial_artifact() {
        let d = tmpdir("torn");
        let f = FaultFs::new(
            &d,
            HostFaultPlan {
                kind: HostFaultKind::TornWrite,
                fire_at: 0,
            },
        );
        f.put("a.json", b"0123456789").unwrap();
        assert_eq!(f.fires(), 1);
        // The retry rewrote the tmp file from scratch; no degradation.
        assert!(f.stats().retried_ok >= 1, "{:?}", f.stats());
        assert!(!f.is_degraded());
        // The final name never held the torn half.
        assert_eq!(std::fs::read(d.join("a.json")).unwrap(), b"0123456789");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn bit_rot_is_caught_by_sidecar() {
        let d = tmpdir("bitrot");
        let f = FaultFs::new(
            &d,
            HostFaultPlan {
                kind: HostFaultKind::BitRot,
                fire_at: 0,
            },
        );
        f.put("a.json", b"precious-results").unwrap();
        assert_eq!(f.fires(), 1);
        // A fresh healthy store over the same directory detects the rot.
        let healthy = DirStore::new(&d);
        match healthy.get("a.json") {
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn crash_after_write_recovers_on_restart() {
        let d = tmpdir("crash");
        // Fire on write op 1: op 0 is the payload tmp write (committed by
        // the rename), op 1 is the sidecar write — so the payload is fully
        // durable when the "machine" dies.
        let f = FaultFs::new(
            &d,
            HostFaultPlan {
                kind: HostFaultKind::CrashAfterWrite,
                fire_at: 1,
            },
        );
        f.put("a.json", b"survives").unwrap();
        let _ = f.put("b.json", b"lost-in-crash");
        // Restart: a fresh store sees the completed write.
        let healthy = DirStore::new(&d);
        assert_eq!(healthy.get("a.json").unwrap(), b"survives");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn mem_store_basics() {
        let s = MemStore::new();
        assert!(!s.persistent());
        assert!(matches!(s.get("x"), Err(StoreError::NotFound(_))));
        s.put("x", b"1").unwrap();
        assert!(s.exists("x"));
        assert_eq!(s.get("x").unwrap(), b"1");
        s.append_line("log", "a").unwrap();
        s.append_line("log", "b").unwrap();
        assert_eq!(s.get("log").unwrap(), b"a\nb\n");
    }

    #[test]
    fn shared_store_is_one_instance_per_dir() {
        let d = tmpdir("shared");
        let a = shared_dir_store(&d);
        let b = shared_dir_store(&d);
        assert!(Arc::ptr_eq(&a, &b));
        let _ = std::fs::remove_dir_all(&d);
    }
}
