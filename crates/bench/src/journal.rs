//! Crash-safe campaign journal and host-I/O fault matrix.
//!
//! A campaign (a `cs-bench` suite, a `cs-smith` fuzz sweep, a `cs-chaos`
//! fault sweep) is a set of independent tasks. The journal makes the set
//! *resumable*: as each task completes, one self-describing record is
//! appended — through the hardened [`ArtifactStore`] — to an append-only
//! `cs-journal-v1` stream, so a campaign killed mid-flight can be
//! restarted with `--resume <dir>`, replay the journal, skip every
//! completed task, re-enqueue the in-flight ones into the sweep executor,
//! and produce a final report byte-identical to an uninterrupted run.
//! This is the paper's own thesis applied to the host runtime: track the
//! side effects of speculative (interruptible) work so the system can
//! recover to a consistent committed state (CleanupSpec, MICRO'19).
//!
//! ## Record framing
//!
//! One record per line: `{"crc":"<16-hex-fnv>","body":<body-json>}` where
//! the CRC is FNV-1a-64 over the exact body bytes. A torn tail line (the
//! usual SIGKILL artifact) or a bit-flipped line fails its CRC and is
//! dropped — i.e. treated as in-flight work to redo — rather than
//! corrupting the replay. The first record is a campaign *header* binding
//! the journal to a digest of the campaign configuration; resuming with a
//! different configuration is refused instead of silently mixing results.
//! Task records carry the task id, a digest of the payload, and the
//! payload itself (a canonical JSON document the campaign knows how to
//! replay, e.g. a `cs-snap-v1` report or a fuzz verdict).

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, Mutex};

use cleanupspec::snap::fnv1a64;
use cleanupspec_obs::{JsonValue, JsonWriter};

use crate::store::{ArtifactStore, DirStore, FaultFs, HostFaultKind, HostFaultPlan, StoreError};

/// Journal format identifier, stored in every header record.
pub const FORMAT: &str = "cs-journal-v1";

/// File name of the journal inside a campaign directory.
pub const FILE: &str = "journal.csj";

/// Frames a record body with its CRC line prefix.
fn frame(body: &str) -> String {
    format!(
        "{{\"crc\":\"{:016x}\",\"body\":{body}}}",
        fnv1a64(body.as_bytes())
    )
}

/// Strips and verifies the CRC framing; `None` for torn or corrupt lines.
fn unframe(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("{\"crc\":\"")?;
    let crc_hex = rest.get(..16)?;
    let body = rest
        .get(16..)?
        .strip_prefix("\",\"body\":")?
        .strip_suffix('}')?;
    let crc = u64::from_str_radix(crc_hex, 16).ok()?;
    (fnv1a64(body.as_bytes()) == crc).then_some(body)
}

/// Identity of a campaign: what it is plus a canonical rendering of the
/// knobs that change its *results*. Execution-only knobs (thread count,
/// ring capacity) are deliberately excluded so a resume may use a
/// different parallelism than the interrupted run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Campaign family, e.g. `cs-bench-suite` or `cs-smith`.
    pub campaign: String,
    /// Canonical result-determining configuration string.
    pub config: String,
}

impl JournalHeader {
    /// Digest binding a journal to this campaign identity.
    pub fn digest(&self) -> String {
        format!(
            "{:016x}",
            fnv1a64(format!("{}\n{}", self.campaign, self.config).as_bytes())
        )
    }

    fn body(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_object(None)
            .string("format", FORMAT)
            .string("kind", "header")
            .string("campaign", &self.campaign)
            .string("config", &self.config)
            .string("digest", &self.digest())
            .close_object();
        w.finish()
    }
}

struct JournalState {
    completed: BTreeMap<String, String>,
    replayed: u64,
    dropped: u64,
}

/// An open campaign journal (see module docs). Thread-safe: sweep workers
/// record completions concurrently through one shared instance.
pub struct Journal {
    store: Arc<dyn ArtifactStore>,
    state: Mutex<JournalState>,
}

impl Journal {
    /// Opens (or creates) the journal in `store` for the campaign
    /// identified by `header`.
    ///
    /// - No journal yet → a fresh one is started (header appended).
    /// - Existing journal with a matching header digest → completed task
    ///   records are replayed; corrupt/torn lines are dropped and their
    ///   tasks treated as in-flight.
    /// - Existing journal for a *different* campaign → `Err` (refusing to
    ///   mix results is the caller's cue to pick another directory).
    /// - Unreadable journal → one-line warning, treated as fresh.
    pub fn open(store: Arc<dyn ArtifactStore>, header: &JournalHeader) -> Result<Journal, String> {
        let mut state = JournalState {
            completed: BTreeMap::new(),
            replayed: 0,
            dropped: 0,
        };
        let mut need_header = true;
        match store.get(FILE) {
            Err(StoreError::NotFound(_)) => {}
            Err(e) => {
                eprintln!("warning: cannot read campaign journal ({e}); starting fresh");
            }
            Ok(bytes) => {
                let text = String::from_utf8_lossy(&bytes);
                let mut seen_header = false;
                for line in text.lines() {
                    if line.is_empty() {
                        continue;
                    }
                    let Some(body) = unframe(line) else {
                        state.dropped += 1;
                        continue;
                    };
                    let Ok(v) = JsonValue::parse(body) else {
                        state.dropped += 1;
                        continue;
                    };
                    match v.get("kind").and_then(JsonValue::as_str) {
                        Some("header") => {
                            let digest = v.get("digest").and_then(JsonValue::as_str);
                            if digest != Some(header.digest().as_str()) {
                                return Err(format!(
                                    "journal in {} belongs to a different campaign \
                                     (digest {:?}, expected {}); refusing to resume",
                                    store.label(),
                                    digest.unwrap_or("<missing>"),
                                    header.digest()
                                ));
                            }
                            seen_header = true;
                        }
                        Some("task") => {
                            let (Some(id), Some(vd)) = (
                                v.get("id").and_then(JsonValue::as_str),
                                v.get("vd").and_then(JsonValue::as_str),
                            ) else {
                                state.dropped += 1;
                                continue;
                            };
                            // Recover the payload losslessly by slicing
                            // it out of the body text: everything after
                            // `"payload": ` minus the record's single
                            // closing brace. The digest check below
                            // catches any mis-slice.
                            let Some(payload) = body
                                .split_once("\"payload\": ")
                                .and_then(|(_, p)| p.strip_suffix('}'))
                            else {
                                state.dropped += 1;
                                continue;
                            };
                            if format!("{:016x}", fnv1a64(payload.as_bytes())) != vd {
                                state.dropped += 1;
                                continue;
                            }
                            state
                                .completed
                                .entry(id.to_string())
                                .or_insert_with(|| payload.to_string());
                        }
                        _ => state.dropped += 1,
                    }
                }
                if seen_header {
                    need_header = false;
                    state.replayed = state.completed.len() as u64;
                } else if state.dropped > 0 {
                    eprintln!(
                        "warning: campaign journal in {} has no intact header \
                         ({} corrupt line(s) dropped); starting fresh",
                        store.label(),
                        state.dropped
                    );
                    state.completed.clear();
                    state.dropped = 0;
                }
            }
        }
        if need_header {
            if let Err(e) = store.append_line(FILE, &frame(&header.body())) {
                eprintln!("warning: cannot start campaign journal: {e}");
            }
        }
        Ok(Journal {
            store,
            state: Mutex::new(state),
        })
    }

    /// The replayed payload for a completed task, if any.
    pub fn completed(&self, id: &str) -> Option<String> {
        self.state
            .lock()
            .expect("journal lock")
            .completed
            .get(id)
            .cloned()
    }

    /// Records a completed task. `payload` must be a single-line JSON
    /// document. Duplicate records for an id are ignored (first wins), so
    /// replayed tasks can be re-recorded harmlessly.
    pub fn record(&self, id: &str, payload: &str) {
        debug_assert!(!payload.contains('\n'), "journal payloads are single-line");
        {
            let mut st = self.state.lock().expect("journal lock");
            if st.completed.contains_key(id) {
                return;
            }
            st.completed.insert(id.to_string(), payload.to_string());
        }
        let mut w = JsonWriter::new();
        w.open_object(None)
            .string("kind", "task")
            .string("id", id)
            .string("vd", &format!("{:016x}", fnv1a64(payload.as_bytes())))
            .close_object();
        let head = w.finish();
        let head = head.strip_suffix('}').expect("object body");
        let body = format!("{head}, \"payload\": {payload}}}");
        if let Err(e) = self.store.append_line(FILE, &frame(&body)) {
            eprintln!("warning: cannot append to campaign journal: {e}");
        }
    }

    /// Number of completed tasks replayed when the journal was opened.
    pub fn replayed(&self) -> u64 {
        self.state.lock().expect("journal lock").replayed
    }

    /// Number of corrupt/torn lines dropped during replay.
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("journal lock").dropped
    }
}

/// Read-only CLI preflight for `--resume <dir>`: validates that the
/// directory's journal (if any) belongs to the campaign described by
/// `header` and returns how many completed tasks it holds. CLIs exit
/// with a clear diagnostic on `Err` instead of clobbering foreign data.
pub fn check_resume(dir: &Path, header: &JournalHeader) -> Result<usize, String> {
    let path = dir.join(FILE);
    let text = match std::fs::read_to_string(&path) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        Ok(t) => t,
    };
    let mut seen_header = false;
    let mut completed = std::collections::BTreeSet::new();
    for line in text.lines() {
        let Some(body) = unframe(line) else { continue };
        let Ok(v) = JsonValue::parse(body) else {
            continue;
        };
        match v.get("kind").and_then(JsonValue::as_str) {
            Some("header") => {
                if v.get("digest").and_then(JsonValue::as_str) != Some(header.digest().as_str()) {
                    return Err(format!(
                        "{} belongs to a different campaign (config changed?); \
                         use a fresh directory or rerun with the original flags",
                        path.display()
                    ));
                }
                seen_header = true;
            }
            Some("task") => {
                if let Some(id) = v.get("id").and_then(JsonValue::as_str) {
                    completed.insert(id.to_string());
                }
            }
            _ => {}
        }
    }
    if seen_header {
        Ok(completed.len())
    } else {
        Ok(0)
    }
}

// ---------------------------------------------------------------------------
// Host-I/O fault detection/recovery matrix
// ---------------------------------------------------------------------------

/// One row of the host fault matrix: what a fault class did and how the
/// durable runtime absorbed it.
#[derive(Debug, Clone)]
pub struct HostMatrixRow {
    /// The injected fault class.
    pub kind: HostFaultKind,
    /// How many times it fired during the scenario.
    pub fires: u64,
    /// How the runtime recovered (`retried`, `degraded`, `quarantined`,
    /// `treated-as-miss`, `recovered-on-restart`).
    pub recovery: String,
    /// Whether the class was fully handled: fault fired, recovery path
    /// engaged, no journal corruption, no completed-task result lost.
    pub handled: bool,
}

/// Runs the standard durability scenario once per [`HostFaultKind`] and
/// classifies the outcome — the host-side sibling of
/// [`crate::detection_matrix`]. The scenario: a healthy campaign
/// directory holding a completed artifact and a journal with one
/// completed task, then a faulting store exercising the artifact-put,
/// journal-append, and artifact-read sites. Every row additionally
/// verifies two invariants against a fresh healthy store: the journal
/// still replays the pre-fault completed task intact, and the pre-fault
/// artifact is still served byte-for-byte.
pub fn host_fault_matrix(seed: u64) -> Vec<HostMatrixRow> {
    HostFaultKind::ALL
        .iter()
        .map(|&kind| run_host_fault_scenario(kind, seed))
        .collect()
}

fn scenario_header() -> JournalHeader {
    JournalHeader {
        campaign: "host-fault-matrix".to_string(),
        config: "scenario-v1".to_string(),
    }
}

const PRIOR_PAYLOAD: &[u8] = b"{\"prior\": 1}";
const T0_PAYLOAD: &str = "{\"verdict\": \"pass\"}";
const T1_PAYLOAD: &str = "{\"verdict\": \"fail\"}";
const TASK1_PAYLOAD: &[u8] = b"{\"task\": 1}";

fn run_host_fault_scenario(kind: HostFaultKind, seed: u64) -> HostMatrixRow {
    let dir = std::env::temp_dir().join(format!(
        "cs-host-matrix-{}-{}-{:x}",
        kind.name(),
        std::process::id(),
        fnv1a64(&seed.to_le_bytes())
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let header = scenario_header();

    // Phase 1 — healthy history: one durable artifact and one journaled
    // completed task, written before any fault exists.
    {
        let healthy: Arc<DirStore> = Arc::new(DirStore::new(&dir));
        healthy.put("prior.json", PRIOR_PAYLOAD).expect("prior put");
        let j = Journal::open(healthy, &header).expect("fresh journal");
        j.record("t0", T0_PAYLOAD);
    }

    // Phase 2 — the same campaign continues on a faulting filesystem,
    // exercising the put, journal-append, and read sites. The firing
    // point is pinned per kind so the fault deterministically hits the
    // artifact-put path (seeded plans are exercised separately by the
    // durability property tests): operation 0 of each class belongs to
    // the `task1.json` put / first read, except CrashAfterWrite, which
    // fires after the first *complete* put (the payload is committed by
    // write op 0's rename; write op 1 is its sidecar) so "crash then
    // restart" has durable work to recover.
    let fire_at = u64::from(kind == HostFaultKind::CrashAfterWrite);
    let faulty = Arc::new(FaultFs::new(&dir, HostFaultPlan { kind, fire_at }));
    let put_ok = faulty.put("task1.json", TASK1_PAYLOAD).is_ok();
    let task1_back = faulty.get("task1.json");
    let prior_back = faulty.get("prior.json");
    if let Ok(j) = Journal::open(Arc::clone(&faulty) as Arc<dyn ArtifactStore>, &header) {
        j.record("t1", T1_PAYLOAD);
    }
    let fires = faulty.fires();
    let stats = faulty.stats();
    let degraded = faulty.is_degraded();

    // Phase 3 — restart against the same directory with a healthy store:
    // nothing from the pre-fault history may be lost or corrupted.
    let fresh: Arc<DirStore> = Arc::new(DirStore::new(&dir));
    let t0_survives = Journal::open(Arc::clone(&fresh) as Arc<dyn ArtifactStore>, &header)
        .map(|j| j.completed("t0").as_deref() == Some(T0_PAYLOAD))
        .unwrap_or(false);
    let prior_survives = fresh.get("prior.json").ok().as_deref() == Some(PRIOR_PAYLOAD);
    let history_intact = t0_survives && prior_survives;

    let (recovery, class_ok) = match kind {
        HostFaultKind::TransientWrite | HostFaultKind::TornWrite => (
            "retried",
            stats.retried_ok >= 1
                && !degraded
                && put_ok
                && task1_back.as_deref().ok() == Some(TASK1_PAYLOAD),
        ),
        HostFaultKind::Enospc | HostFaultKind::FsyncFail | HostFaultKind::RenameFail => (
            "degraded",
            // The store fell back to memory without losing the write.
            degraded && put_ok && task1_back.as_deref().ok() == Some(TASK1_PAYLOAD),
        ),
        HostFaultKind::BitRot => (
            "quarantined",
            // The rot is silent at write time; the win is that no reader
            // is ever served the corrupt bytes. Depending on where the
            // rot landed it is either quarantined on first read or (for
            // a rotten journal line) dropped by the CRC framing.
            match fresh.get("task1.json") {
                Err(StoreError::Corrupt { .. }) => true,
                Err(StoreError::NotFound(_)) => true, // already quarantined above
                Ok(bytes) => bytes == TASK1_PAYLOAD,  // rot hit a journal line instead
                Err(_) => false,
            },
        ),
        HostFaultKind::ReadEio => (
            "treated-as-miss",
            // Failed reads surface as errors (a cache miss to callers),
            // never as fabricated data.
            matches!(prior_back, Err(StoreError::Io { .. }))
                || matches!(task1_back, Err(StoreError::Io { .. })),
        ),
        HostFaultKind::CrashAfterWrite => (
            "recovered-on-restart",
            // The pre-crash completed put is durable and the restart saw
            // it (checked via history_intact plus the durable task1).
            fresh.get("task1.json").ok().as_deref() == Some(TASK1_PAYLOAD),
        ),
    };

    let row = HostMatrixRow {
        kind,
        fires,
        recovery: recovery.to_string(),
        handled: fires >= 1 && class_ok && history_intact,
    };
    let _ = std::fs::remove_dir_all(&dir);
    row
}

/// Renders the host fault matrix as an aligned text table (the
/// `cs-chaos --host-matrix` output).
pub fn render_host_matrix(rows: &[HostMatrixRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>5}  {:<22} {}\n",
        "fault", "fires", "recovery", "handled"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>5}  {:<22} {}\n",
            r.kind.name(),
            r.fires,
            r.recovery,
            if r.handled { "yes" } else { "NO" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn header() -> JournalHeader {
        JournalHeader {
            campaign: "test".to_string(),
            config: "a=1 b=2".to_string(),
        }
    }

    #[test]
    fn frame_roundtrip_and_corruption_detection() {
        let body = "{\"kind\": \"task\", \"id\": \"x\"}";
        let line = frame(body);
        assert_eq!(unframe(&line), Some(body));
        // Flip a byte in the body → CRC mismatch.
        let evil = line.replace("task", "tosk");
        assert_eq!(unframe(&evil), None);
        // Torn tail → no match.
        assert_eq!(unframe(&line[..line.len() - 3]), None);
        assert_eq!(unframe(""), None);
    }

    #[test]
    fn fresh_journal_records_and_replays() {
        let store: Arc<dyn ArtifactStore> = Arc::new(MemStore::new());
        let j = Journal::open(Arc::clone(&store), &header()).unwrap();
        assert_eq!(j.replayed(), 0);
        j.record("t1", "{\"v\": 1}");
        j.record("t2", "{\"v\": 2}");
        j.record("t1", "{\"v\": 999}"); // duplicate: first wins
        drop(j);
        let j2 = Journal::open(store, &header()).unwrap();
        assert_eq!(j2.replayed(), 2);
        assert_eq!(j2.completed("t1").as_deref(), Some("{\"v\": 1}"));
        assert_eq!(j2.completed("t2").as_deref(), Some("{\"v\": 2}"));
        assert_eq!(j2.completed("t3"), None);
        assert_eq!(j2.dropped(), 0);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let store: Arc<dyn ArtifactStore> = Arc::new(MemStore::new());
        let j = Journal::open(Arc::clone(&store), &header()).unwrap();
        j.record("t1", "{\"v\": 1}");
        j.record("t2", "{\"v\": 2}");
        drop(j);
        // Simulate SIGKILL mid-append: truncate the last line.
        let mut bytes = store.get(FILE).unwrap();
        bytes.truncate(bytes.len() - 10);
        // Rewrite the journal with a torn tail (MemStore put replaces).
        store.put(FILE, &bytes).unwrap();
        let j2 = Journal::open(store, &header()).unwrap();
        assert_eq!(j2.replayed(), 1, "t2's torn record treated as in-flight");
        assert!(j2.completed("t1").is_some());
        assert!(j2.completed("t2").is_none());
        assert_eq!(j2.dropped(), 1);
    }

    #[test]
    fn mismatched_campaign_is_refused() {
        let store: Arc<dyn ArtifactStore> = Arc::new(MemStore::new());
        let j = Journal::open(Arc::clone(&store), &header()).unwrap();
        j.record("t1", "{\"v\": 1}");
        drop(j);
        let other = JournalHeader {
            campaign: "test".to_string(),
            config: "a=1 b=3".to_string(),
        };
        let err = match Journal::open(store, &other) {
            Err(e) => e,
            Ok(_) => panic!("mismatched campaign must be refused"),
        };
        assert!(err.contains("different campaign"), "{err}");
    }

    #[test]
    fn payload_with_nested_objects_survives_replay() {
        let store: Arc<dyn ArtifactStore> = Arc::new(MemStore::new());
        let j = Journal::open(Arc::clone(&store), &header()).unwrap();
        let payload = "{\"a\": {\"b\": [1, 2, {\"c\": \"x}y\"}]}, \"d\": 4}";
        j.record("deep", payload);
        drop(j);
        let j2 = Journal::open(store, &header()).unwrap();
        assert_eq!(j2.completed("deep").as_deref(), Some(payload));
    }

    #[test]
    fn check_resume_counts_and_refuses() {
        let dir = std::env::temp_dir().join(format!("cs-journal-preflight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(check_resume(&dir, &header()), Ok(0), "no journal yet");
        let store: Arc<dyn ArtifactStore> = Arc::new(DirStore::new(&dir));
        let j = Journal::open(store, &header()).unwrap();
        j.record("t1", "{\"v\": 1}");
        j.record("t2", "{\"v\": 2}");
        drop(j);
        assert_eq!(check_resume(&dir, &header()), Ok(2));
        let other = JournalHeader {
            campaign: "other".to_string(),
            config: String::new(),
        };
        assert!(check_resume(&dir, &other).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn host_matrix_all_classes_handled() {
        let rows = host_fault_matrix(42);
        assert_eq!(rows.len(), HostFaultKind::ALL.len());
        for r in &rows {
            assert!(r.fires >= 1, "{} never fired", r.kind.name());
            assert!(
                r.handled,
                "{} not handled: recovery={} fires={}",
                r.kind.name(),
                r.recovery,
                r.fires
            );
        }
    }
}
