//! Regression for the `run_with_warmup` warmup-stop bug: a warmup phase
//! that fails (livelock, cycle-limit exhaustion) used to be silently
//! discarded, and the measure phase then profiled a half-warm, possibly
//! wedged system as if it were a valid run. The warmup's stop reason must
//! be returned and recorded in the report so harnesses flag it truncated.

use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::SimBuilder;
use cleanupspec_mem::fault::{FaultKind, FaultPlan};
use cleanupspec_mem::hierarchy::MemConfig;
use cleanupspec_workloads::spec::spec_workload;

#[test]
fn failed_warmup_surfaces_its_stop_and_truncates_the_report() {
    // Squeeze the MSHR file and plant the leak-mshr-slot fault: every
    // miss permanently leaks its slot, so the pipeline wedges within the
    // warmup phase and the forward-progress watchdog fires.
    let w = spec_workload("mcf").expect("known workload");
    let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
        .program(w.build(7))
        .mem_config(MemConfig {
            mshrs_per_core: 4,
            ..MemConfig::default()
        })
        .seed(7)
        .fault_plan(FaultPlan::single(FaultKind::LeakMshrSlot))
        .build();

    let stop = sim.run_with_warmup(10_000, 50_000);
    assert!(
        !stop.is_success(),
        "planted MSHR leak should wedge the warmup, got {stop}"
    );

    let report = sim.report();
    // The failure is recorded — this is the marker runner.rs and cs-bench
    // use to print their "report is truncated" warning.
    assert_eq!(report.stop.as_ref(), Some(&stop));
    // The measure phase was skipped: nowhere near the measure budget was
    // committed, and the warmup itself wedged short of its own budget.
    assert!(
        report.cores[0].committed_insts < 10_000,
        "warmup should have wedged before its budget, committed {}",
        report.cores[0].committed_insts
    );
}

#[test]
fn healthy_warmup_still_measures_the_full_region() {
    let w = spec_workload("mcf").expect("known workload");
    let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
        .program(w.build(7))
        .seed(7)
        .build();
    let stop = sim.run_with_warmup(1_000, 4_000);
    assert!(stop.is_success(), "clean run must complete, got {stop}");
    let report = sim.report();
    // Stats were reset at the warmup boundary: the measured region covers
    // the 4k-inst budget, not warmup + measure.
    assert!(report.cores[0].committed_insts >= 4_000);
    assert!(report.cores[0].committed_insts < 5_000 + 1_000);
}
