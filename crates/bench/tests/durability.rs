//! Durability gates for the campaign runtime (PR 9 acceptance criteria):
//!
//! * every host-I/O fault class is retried, quarantined, degraded, or
//!   recovered without corrupting the journal or losing completed
//!   results — both the curated recovery matrix and a property sweep of
//!   fault classes crossed with injection sites;
//! * a campaign SIGKILLed mid-flight and rerun with `--resume` produces
//!   a byte-identical final document;
//! * a second `--resume` run replays every cell from the journal;
//! * an unwritable checkpoint directory degrades to in-memory results
//!   with a one-line diagnostic instead of failing the run.

use cleanupspec::modes::SecurityMode;
use cleanupspec_bench::journal::{Journal, JournalHeader};
use cleanupspec_bench::store::{
    ArtifactStore, DirStore, FaultFs, HostFaultKind, HostFaultPlan, StoreError,
};
use cleanupspec_bench::{canonical_json, host_fault_matrix, run_suite, SuiteOptions};
use cleanupspec_obs::JsonValue;
use cleanupspec_workloads::spec::SPEC_WORKLOADS;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cs-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The curated recovery matrix: the CI gate for "no host fault class can
/// corrupt the journal or lose completed results".
#[test]
fn host_fault_matrix_handles_every_class() {
    let rows = host_fault_matrix(0xD15C_FA11);
    assert!(
        rows.len() >= 6,
        "matrix must cover at least 6 host fault classes, got {}",
        rows.len()
    );
    for r in &rows {
        assert!(r.fires >= 1, "{} never fired", r.kind.name());
        assert!(
            r.handled,
            "{} was not handled (recovery: {})",
            r.kind.name(),
            r.recovery
        );
    }
}

/// Property sweep: every fault class crossed with several injection
/// sites (`fire_at` walks the fault across the put payload, its sidecar,
/// the journal header append, and the record appends). Two invariants,
/// regardless of where the fault lands:
///
/// 1. a restarted healthy store never serves *wrong* artifact bytes —
///    an artifact is intact, absent, or detected-and-quarantined;
/// 2. a restarted journal never replays a *wrong* payload — each task
///    is either absent (re-run) or replays exactly what was recorded.
#[test]
fn faultfs_property_sweep_over_classes_and_sites() {
    const PAYLOAD_A: &[u8] = b"{\"artifact\": \"a\"}";
    const T0: &str = "{\"verdict\": 0}";
    const T1: &str = "{\"verdict\": 1}";
    for kind in HostFaultKind::ALL {
        for fire_at in 0..4u64 {
            let dir = scratch(&format!("prop-{}-{fire_at}", kind.name()));
            let faulty = Arc::new(FaultFs::new(&dir, HostFaultPlan { kind, fire_at }));
            let header = JournalHeader {
                campaign: "prop".to_string(),
                config: "sweep".to_string(),
            };
            // Faulted phase: one artifact, one journal with two records.
            // Nothing here may panic, whatever the injector does.
            let _ = faulty.put("a.json", PAYLOAD_A);
            if let Ok(j) = Journal::open(Arc::clone(&faulty) as Arc<dyn ArtifactStore>, &header) {
                j.record("t0", T0);
                j.record("t1", T1);
            }

            // Healthy restart: invariant 1.
            let clean = DirStore::new(&dir);
            match clean.get("a.json") {
                Ok(bytes) => assert_eq!(
                    bytes,
                    PAYLOAD_A,
                    "wrong artifact bytes after {} at site {fire_at}",
                    kind.name()
                ),
                Err(StoreError::NotFound(_)) | Err(StoreError::Corrupt { .. }) => {}
                Err(StoreError::Io { name, detail }) => {
                    panic!(
                        "restart read failed after {} at site {fire_at}: {name}: {detail}",
                        kind.name()
                    )
                }
            }

            // Healthy restart: invariant 2.
            let j = Journal::open(Arc::new(DirStore::new(&dir)), &header)
                .expect("reopening a journal on a healthy store must never fail");
            for (id, want) in [("t0", T0), ("t1", T1)] {
                if let Some(got) = j.completed(id) {
                    assert_eq!(
                        got,
                        want,
                        "journal replayed a wrong payload for {id} after {} at site {fire_at}",
                        kind.name()
                    );
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

fn cs_bench_cmd(out: &Path, extra: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_cs-bench"));
    cmd.args([
        "--modes",
        "cleanupspec",
        "--workloads",
        "gcc,mcf,lbm",
        "--insts",
        "6000",
        "--threads",
        "2",
        "--out",
    ])
    .arg(out)
    .args(extra)
    // The suite must not pick up ambient caches or thread overrides:
    // the test pins its own sizing.
    .env_remove("CLEANUPSPEC_CHECKPOINT_DIR")
    .env_remove("CLEANUPSPEC_THREADS");
    cmd
}

fn canonical_doc(path: &Path) -> String {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let doc = JsonValue::parse(&text).expect("BENCH document parses");
    canonical_json(&doc)
}

/// The headline acceptance test: SIGKILL a campaign mid-flight, resume
/// it, and demand the final document be byte-identical (canonicalized —
/// host wall-clock fields are legitimately nondeterministic) to an
/// uninterrupted run's.
#[test]
fn sigkill_mid_campaign_then_resume_matches_uninterrupted_run() {
    let work = scratch("kill-resume");
    std::fs::create_dir_all(&work).unwrap();
    let baseline = work.join("baseline.json");
    let resumed = work.join("resumed.json");
    let jdir = work.join("campaign");

    // Uninterrupted reference run (no journal).
    let out = cs_bench_cmd(&baseline, &[])
        .output()
        .expect("spawn cs-bench");
    assert!(
        out.status.success(),
        "baseline run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Interrupted run: wait for the journal to hold at least one
    // completed task (line 1 is the campaign header), then SIGKILL.
    let jdir_arg = jdir.to_string_lossy().into_owned();
    let mut child = cs_bench_cmd(&resumed, &["--resume", &jdir_arg])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn cs-bench");
    let journal_file = jdir.join("journal.csj");
    let mut killed_midway = false;
    for _ in 0..600 {
        if let Some(_status) = child.try_wait().expect("try_wait") {
            break; // Finished before we could kill it; resume still must work.
        }
        let tasks = std::fs::read_to_string(&journal_file)
            .map(|t| t.lines().count().saturating_sub(1))
            .unwrap_or(0);
        if tasks >= 1 {
            child.kill().expect("SIGKILL");
            killed_midway = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let _ = child.wait();

    // Resume to completion.
    let output = cs_bench_cmd(&resumed, &["--resume", &jdir_arg])
        .output()
        .expect("spawn cs-bench");
    assert!(
        output.status.success(),
        "resumed run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("resuming from"),
        "resume preflight notice missing: {stderr}"
    );
    if killed_midway {
        assert!(
            stderr.contains("replayed from the campaign journal"),
            "no cells were replayed after a mid-flight kill: {stderr}"
        );
    }
    assert_eq!(
        canonical_doc(&baseline),
        canonical_doc(&resumed),
        "resumed document differs from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&work);
}

/// In-process double-run: the second suite over the same journal replays
/// every cell and produces a canonically identical document.
#[test]
fn second_suite_run_replays_every_cell_from_the_journal() {
    let jdir = scratch("double-run");
    let workloads: Vec<_> = SPEC_WORKLOADS
        .iter()
        .filter(|w| w.name == "gcc" || w.name == "mcf")
        .cloned()
        .collect();
    let mut opts = SuiteOptions::new(&[SecurityMode::CleanupSpec], &workloads);
    opts.cfg.insts = 4_000;
    opts.cfg.threads = 2;
    opts.resume_dir = Some(jdir.clone());
    let first = run_suite(&opts);
    assert_eq!(first.resumed, 0);
    let second = run_suite(&opts);
    // 2 modes (NonSecure forced in) x 2 workloads.
    assert_eq!(second.resumed, 4, "second run must replay every cell");
    let a = canonical_json(&JsonValue::parse(&first.report.to_json()).unwrap());
    let b = canonical_json(&JsonValue::parse(&second.report.to_json()).unwrap());
    assert_eq!(a, b, "replayed document differs");
    let _ = std::fs::remove_dir_all(&jdir);
}

/// An unwritable checkpoint directory must not fail the run: one
/// diagnostic line, in-memory fallback, exit 0.
#[test]
fn unwritable_checkpoint_dir_degrades_with_a_diagnostic() {
    let work = scratch("ro-ckpt");
    std::fs::create_dir_all(&work).unwrap();
    // A regular file where a directory is expected blocks every write
    // beneath it — works even when the test runs as root, unlike
    // permission bits.
    let blocker = work.join("blocked");
    std::fs::write(&blocker, b"not a directory").unwrap();
    let ckpt = blocker.join("ckpt");
    let out = work.join("BENCH.json");
    let output = Command::new(env!("CARGO_BIN_EXE_cs-bench"))
        .args([
            "--modes",
            "cleanupspec",
            "--workloads",
            "gcc",
            "--insts",
            "4000",
        ])
        .args(["--threads", "2", "--out"])
        .arg(&out)
        .arg("--checkpoint-dir")
        .arg(&ckpt)
        .env_remove("CLEANUPSPEC_CHECKPOINT_DIR")
        .env_remove("CLEANUPSPEC_THREADS")
        .output()
        .expect("spawn cs-bench");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "run must succeed despite the unwritable checkpoint dir: {stderr}"
    );
    assert!(
        stderr.contains("unwritable"),
        "expected the one-line degradation diagnostic, got: {stderr}"
    );
    assert!(out.exists(), "BENCH document must still be written");
    let _ = std::fs::remove_dir_all(&work);
}
