//! Scheduling-invariance guarantee of the cs-exec work-stealing pool:
//! the same seed must produce a byte-identical BENCH document (modulo
//! the host-varying fields `canonical_json` strips) at any `--threads`
//! value, and the skewed-mix smoke shows stealing beating static
//! chunking (timing assertion release-gated behind `#[ignore]`; CI runs
//! it with `--release -- --ignored`).

use cleanupspec::modes::SecurityMode;
use cleanupspec_bench::bench_report::canonical_json;
use cleanupspec_bench::runner::ExperimentConfig;
use cleanupspec_bench::suite::{run_suite, SuiteOptions};
use cleanupspec_bench::{run_indexed, run_static_chunked, ExecConfig};
use cleanupspec_obs::JsonValue;
use cleanupspec_workloads::spec::SPEC_WORKLOADS;
use std::hint::black_box;
use std::time::Instant;

/// The full BENCH document for a small matrix at a given thread count,
/// in canonical form (host/wall_secs/host_kips stripped).
fn bench_doc_at(threads: usize) -> String {
    let mut opts = SuiteOptions::new(&[SecurityMode::CleanupSpec], &SPEC_WORKLOADS[..3]);
    opts.cfg = ExperimentConfig {
        insts: 3_000,
        seed: 0xC1EA_2019,
        threads,
    };
    let out = run_suite(&opts);
    assert!(out.failed.is_empty(), "no run may panic: {:?}", out.failed);
    canonical_json(&JsonValue::parse(&out.report.to_json()).expect("report is valid JSON"))
}

#[test]
fn bench_document_is_byte_identical_across_thread_counts() {
    let one = bench_doc_at(1);
    assert!(
        one.contains("cs-bench-v1"),
        "canonical doc keeps the schema"
    );
    assert!(
        !one.contains("wall_secs") && !one.contains("host_kips"),
        "canonical doc must strip host-varying fields"
    );
    for threads in [2, 4] {
        assert_eq!(
            one,
            bench_doc_at(threads),
            "BENCH document changed between --threads 1 and --threads {threads}"
        );
    }
}

/// A deliberately skewed task mix: task 0 is 5x the work of every other
/// task. With 16 tasks on 4 threads the straggler's chunk costs 5+3=8
/// units under static chunking, while stealing re-homes the straggler's
/// chunk-mates for a ~6-unit critical path — a structural ~1.33x gap
/// (the 5x multiplier matches the balanced-share bound: total/threads =
/// 20/4 = 5, so the straggler alone fills its worker).
fn skewed_task(i: usize, unit: u64) -> u64 {
    let reps = if i == 0 { 5 * unit } else { unit };
    let mut acc = 0x9E37_79B9_7F4A_7C15u64 ^ i as u64;
    for r in 0..reps {
        acc = black_box(acc.wrapping_mul(6364136223846793005).wrapping_add(r));
    }
    acc
}

#[test]
fn skewed_mix_results_match_between_schedulers() {
    let n = 16;
    let cfg = ExecConfig {
        threads: 4,
        ..ExecConfig::default()
    };
    let stolen = run_indexed(n, &cfg, |i| skewed_task(i, 20_000));
    let chunked = run_static_chunked(n, 4, |i| skewed_task(i, 20_000));
    assert!(stolen.is_complete() && chunked.is_complete());
    assert_eq!(stolen.slots, chunked.slots);
}

/// Timing smoke: with one straggler task, work stealing's wall-clock
/// approaches the straggler alone while static chunking serializes the
/// straggler behind its chunk-mates (~1.33x structural gap, asserted at
/// 1.15x for noise headroom); `#[ignore]`d so debug-mode tier-1 stays
/// fast and unflaky — CI runs it in release.
#[test]
#[ignore = "timing assertion; run in release (CI exec job)"]
fn skewed_mix_work_stealing_beats_static_chunking() {
    let n = 16;
    let unit = 8_000_000;
    let threads = 4;
    // On a single hardware thread every schedule timeshares one core and
    // no scheduler can beat another in wall-clock; the gap only exists
    // with real parallelism (CI runners have >= 2 cores).
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 2 {
        eprintln!("skipping: only {cores} hardware thread(s) available");
        return;
    }
    let cfg = ExecConfig {
        threads,
        ..ExecConfig::default()
    };
    // Best of 3 per scheduler to shrug off host noise.
    let time = |f: &dyn Fn()| {
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let stolen = time(&|| {
        assert!(run_indexed(n, &cfg, |i| skewed_task(i, unit)).is_complete());
    });
    let chunked = time(&|| {
        assert!(run_static_chunked(n, threads, |i| skewed_task(i, unit)).is_complete());
    });
    assert!(
        stolen * 1.15 < chunked,
        "work stealing ({stolen:.3}s) should beat static chunking ({chunked:.3}s) on a skewed mix"
    );
}
