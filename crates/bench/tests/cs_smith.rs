//! cs-smith integration tests: a bounded deterministic campaign must be
//! clean, and a deliberately sabotaged undo (skip one victim restore) must
//! be caught by the oracles and shrink to a tiny repro. The CI workflow
//! runs the full 500-seed campaign via the `cs-smith` binary; these tests
//! keep `cargo test` fast with a smaller smoke slice.

use cleanupspec_bench::fuzz::{run_campaign, run_plan_sabotaged, shrink, SeedVerdict};
use cleanupspec_workloads::smith::{assemble_plan, plan};

#[test]
fn bounded_campaign_is_clean_and_exercises_squashes() {
    let r = run_campaign(0, 32, 4);
    assert!(
        r.clean(),
        "differential campaign found violations: {:?}",
        r.violations
    );
    assert!(
        r.squashes > 0,
        "campaign observed no squashes — the fuzzer is vacuous"
    );
}

/// Regression for the planted-bug acceptance criterion: with CleanupSpec's
/// undo sabotaged to skip one victim restore, the oracles must flag a seed
/// within a small scan, and the greedy shrinker must minimize it to a
/// replay of at most 20 instructions that still fails.
#[test]
fn sabotaged_restore_is_caught_and_shrinks_small() {
    let seed = (0..64)
        .find(|&s| !run_plan_sabotaged(&plan(s)).passed())
        .expect("sabotaged undo survived 64 seeds — oracles are toothless");

    let min = shrink(&plan(seed), |cand| !run_plan_sabotaged(cand).passed());
    let insts: usize = assemble_plan(&min).iter().map(|p| p.len()).sum();
    assert!(
        insts <= 20,
        "shrunk repro has {insts} instructions (want <= 20): {:?}",
        min.ops
    );
    match run_plan_sabotaged(&min) {
        SeedVerdict::Fail(vs) => {
            assert!(
                vs.iter().any(|v| v.oracle.contains("audit")
                    || v.oracle.contains("restoration")
                    || v.oracle.contains("cache")),
                "shrunk repro fails, but not on a cache/audit oracle: {vs:?}"
            );
        }
        SeedVerdict::Pass { .. } => panic!("shrunk repro no longer fails"),
    }

    // The same minimized plan must pass with the real (unsabotaged)
    // CleanupSpec undo: the repro isolates the planted bug, nothing else.
    assert!(
        cleanupspec_bench::fuzz::run_plan(&min).passed(),
        "minimized repro fails even without the sabotage"
    );
}
