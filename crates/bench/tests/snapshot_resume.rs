//! cs-snap resume-exactness: running to cycle N, snapshotting, and
//! continuing — or restoring and re-running — must be indistinguishable
//! from an uninterrupted run, for every security mode. The comparison is
//! byte-level on the canonical `snap::report_json` serialization, so any
//! un-captured state (RNG streams, SEFE slots, CEASER keys, predictor
//! tables, watchdog progress) that changes a single counter fails loudly.
//!
//! Seeds come from a SplitMix64 stream (the repo's hermetic-test
//! convention): deterministic, no `rand` dependency.

use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::{SimBuilder, Simulator};
use cleanupspec::snap::{self, CheckpointKey};
use cleanupspec_core::system::RunLimits;
use cleanupspec_mem::rng::SplitMix64;
use cleanupspec_obs::{RingSink, Shared};
use cleanupspec_workloads::spec::spec_workload;

const INSTS: u64 = 3_000;
const WORKLOADS: [&str; 2] = ["gcc", "mcf"];

fn build_sim(mode: SecurityMode, workload: &str, seed: u64) -> Simulator {
    let w = spec_workload(workload).expect("known workload");
    SimBuilder::new(mode)
        .program(w.build(seed))
        .seed(seed)
        .build()
}

/// The limits `Simulator::run_insts(INSTS)` uses, reproduced so the
/// interrupted run can finish under identical absolute bounds.
fn full_limits() -> RunLimits {
    RunLimits {
        max_cycles: 400 * INSTS + 1_000_000,
        max_insts_per_core: INSTS,
        ..RunLimits::default()
    }
}

/// snapshot-at-N / continue and snapshot-at-N / restore / re-run must
/// both reproduce the uninterrupted report byte-for-byte, for every
/// mode, across seeds and several mid-run checkpoint points.
#[test]
fn resume_is_bit_exact_for_every_mode() {
    let mut rng = SplitMix64::new(0xC55A_AB20_19AB);
    for mode in SecurityMode::ALL {
        for workload in WORKLOADS {
            let seed = rng.next_u64();
            let mut base = build_sim(mode, workload, seed);
            base.run_insts(INSTS);
            let expect = snap::report_json(&base.report());
            let total_cycles = base.report().cycles;
            assert!(
                total_cycles > 100,
                "{mode}/{workload}: run too short to interrupt"
            );

            // Checkpoint at three mid-run points; with per-workload squash
            // rates in the hundreds this lands inside squash/cleanup
            // windows routinely.
            for frac in [3u64, 2, 4] {
                let at = total_cycles / frac;
                let mut sim = build_sim(mode, workload, seed);
                sim.run(RunLimits {
                    max_cycles: at,
                    ..full_limits()
                });
                let snap_state = sim.snapshot();
                assert_eq!(snap_state.mode(), mode);

                // Taking a snapshot must not perturb the run.
                sim.run(full_limits());
                let continued = snap::report_json(&sim.report());
                assert_eq!(
                    continued, expect,
                    "{mode}/{workload} seed {seed:#x}: continue after snapshot at cycle {at} diverged"
                );

                // Rewinding to the checkpoint and re-running the tail must
                // land on the identical report again.
                sim.restore(&snap_state);
                sim.run(full_limits());
                let restored = snap::report_json(&sim.report());
                assert_eq!(
                    restored, expect,
                    "{mode}/{workload} seed {seed:#x}: restore+rerun from cycle {at} diverged"
                );
            }
        }
    }
}

/// The interrupted run's event stream (minus the snapshot markers
/// themselves) must match the uninterrupted run's byte-for-byte.
#[test]
fn event_stream_is_bit_exact_across_snapshot() {
    let mode = SecurityMode::CleanupSpec;
    let seed = SplitMix64::new(0xEE_2019).next_u64();
    let capacity = 1 << 20;

    let dump_of = |sim: &mut Simulator, interrupt_at: Option<u64>| {
        let ring = Shared::new(RingSink::new(capacity));
        sim.set_sinks(vec![Box::new(ring.clone())]);
        if let Some(at) = interrupt_at {
            sim.run(RunLimits {
                max_cycles: at,
                ..full_limits()
            });
            let _ = sim.snapshot();
        }
        sim.run(full_limits());
        sim.finish_observer();
        let dump = ring.with(|r| {
            assert_eq!(r.dropped(), 0, "ring too small for byte-exact comparison");
            r.dump()
        });
        dump.lines()
            .filter(|l| !l.contains("snapshot-taken") && !l.contains("snapshot-restored"))
            .collect::<Vec<_>>()
            .join("\n")
    };

    let mut base = build_sim(mode, "gcc", seed);
    let expect = dump_of(&mut base, None);
    let mid = base.report().cycles / 2;

    let mut interrupted = build_sim(mode, "gcc", seed);
    let got = dump_of(&mut interrupted, Some(mid));
    assert_eq!(
        got, expect,
        "event stream changed across a snapshot at cycle {mid}"
    );
}

/// cs-snap-v1 serialization roundtrip at integration level: a real
/// workload report survives write → parse → re-serialize unchanged, for
/// a randomized and a non-randomized mode.
#[test]
fn serialized_checkpoint_roundtrips_real_reports() {
    let mut rng = SplitMix64::new(0x5E41_2019);
    for mode in [SecurityMode::NonSecure, SecurityMode::CleanupSpec] {
        let seed = rng.next_u64();
        let mut sim = build_sim(mode, "astar", seed);
        sim.run_insts(INSTS);
        let report = sim.report();
        let key = CheckpointKey {
            workload: "astar".into(),
            mode,
            insts: INSTS,
            seed,
            warmup: 0,
        };
        let text = snap::write_checkpoint(&key, &report).expect("successful runs are cacheable");
        let back = snap::read_checkpoint(&text, &key).expect("own output must parse");
        assert_eq!(snap::report_json(&report), snap::report_json(&back));
    }
}
