//! End-to-end benches: scaled-down versions of the paper's experiment
//! drivers, one group per table/figure, so `cargo bench --bench
//! experiments` regenerates (small) instances of every result and tracks
//! the simulator's own performance.

use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::SimBuilder;
use cleanupspec_bench::microbench::Bencher;
use cleanupspec_bench::runner::ExperimentConfig;
use cleanupspec_bench::Sweep;
use cleanupspec_workloads::attacks::{run_spectre_v1, spectre_v1_program, SpectreConfig};
use cleanupspec_workloads::micro::{alu_loop, mispredict_storm};
use cleanupspec_workloads::sharing::sharing_workload;
use cleanupspec_workloads::spec::spec_workload;

fn quick() -> ExperimentConfig {
    ExperimentConfig {
        insts: 20_000,
        seed: 11,
        threads: 1,
    }
}

/// Figure 12 / Table 6 driver: one workload under each security mode.
fn bench_modes(b: &Bencher) {
    let w = spec_workload("astar").expect("astar exists");
    for mode in [
        SecurityMode::NonSecure,
        SecurityMode::CleanupSpec,
        SecurityMode::NaiveInvalidate,
        SecurityMode::InvisiSpecInitial,
        SecurityMode::InvisiSpecRevised,
        SecurityMode::DelaySpeculativeLoads,
    ] {
        b.run("fig12_tab06_modes", mode.name(), || {
            // threads=1 runs in-process on the caller, so the bench still
            // measures the simulation, not pool spin-up.
            Sweep::new()
                .workloads(std::slice::from_ref(&w))
                .mode(mode)
                .config(&quick())
                .run()
        });
    }
}

/// Table 1 driver: the randomization ablations.
fn bench_randomization(b: &Bencher) {
    let w = spec_workload("soplex").expect("soplex exists");
    for mode in [
        SecurityMode::NonSecure,
        SecurityMode::L1RandomOnly,
        SecurityMode::L2RandomOnly,
        SecurityMode::BothRandomOnly,
    ] {
        b.run("tab01_randomization", mode.name(), || {
            Sweep::new()
                .workloads(std::slice::from_ref(&w))
                .mode(mode)
                .config(&quick())
                .run()
        });
    }
}

/// Figure 11 driver: one full Spectre-V1 attack + inference round.
fn bench_spectre(b: &Bencher) {
    for mode in [SecurityMode::NonSecure, SecurityMode::CleanupSpec] {
        b.run("fig11_spectre", mode.name(), || run_spectre_v1(mode, 1, 3));
    }
}

/// Figure 9 driver: a 4-core sharing workload.
fn bench_sharing(b: &Bencher) {
    let w = sharing_workload("radiosity").expect("radiosity exists");
    b.run("fig09_sharing", "radiosity_4core", || {
        let mut builder = SimBuilder::new(SecurityMode::NonSecure).seed(4);
        for p in w.build_all(4, 4) {
            builder = builder.program(p);
        }
        let mut sim = builder.build();
        sim.run_insts(5_000);
        sim.report()
    });
}

/// Figures 13-15 / Table 5 driver: the cleanup engine under a mispredict
/// storm (ablation: cleanup cost vs squash-free baseline).
fn bench_cleanup_engine(b: &Bencher) {
    b.run("fig13_15_cleanup_engine", "storm_cleanupspec", || {
        let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
            .program(mispredict_storm(2_000, 3, 5))
            .build();
        sim.run_to_completion();
        sim.report()
    });
    b.run("fig13_15_cleanup_engine", "storm_nonsecure", || {
        let mut sim = SimBuilder::new(SecurityMode::NonSecure)
            .program(mispredict_storm(2_000, 3, 5))
            .build();
        sim.run_to_completion();
        sim.report()
    });
    b.run("fig13_15_cleanup_engine", "squash_free_cleanupspec", || {
        let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
            .program(alu_loop(10_000))
            .build();
        sim.run_to_completion();
        sim.report()
    });
}

/// Simulator-throughput bench: simulated instructions per wall-second for
/// a representative program (tracks the engine's own performance).
fn bench_sim_throughput(b: &Bencher) {
    let cfg = SpectreConfig::default();
    b.run("sim_throughput", "spectre_program_run", || {
        let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
            .program(spectre_v1_program(&cfg))
            .build();
        sim.run_to_completion()
    });
}

fn main() {
    let b = Bencher::new();
    bench_modes(&b);
    bench_randomization(&b);
    bench_spectre(&b);
    bench_sharing(&b);
    bench_cleanup_engine(&b);
    bench_sim_throughput(&b);
}
