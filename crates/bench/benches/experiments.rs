//! Criterion end-to-end benches: scaled-down versions of the paper's
//! experiment drivers, one group per table/figure, so `cargo bench`
//! regenerates (small) instances of every result and tracks the
//! simulator's own performance.

use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::SimBuilder;
use cleanupspec_bench::runner::{run_spec_workload, ExperimentConfig};
use cleanupspec_workloads::attacks::{run_spectre_v1, spectre_v1_program, SpectreConfig};
use cleanupspec_workloads::sharing::sharing_workload;
use cleanupspec_workloads::spec::spec_workload;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn quick() -> ExperimentConfig {
    ExperimentConfig {
        insts: 20_000,
        seed: 11,
        threads: 1,
    }
}

/// Figure 12 / Table 6 driver: one workload under each security mode.
fn bench_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_tab06_modes");
    g.sample_size(10);
    let w = spec_workload("astar").expect("astar exists");
    for mode in [
        SecurityMode::NonSecure,
        SecurityMode::CleanupSpec,
        SecurityMode::NaiveInvalidate,
        SecurityMode::InvisiSpecInitial,
        SecurityMode::InvisiSpecRevised,
        SecurityMode::DelaySpeculativeLoads,
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(mode.name()), &mode, |b, &m| {
            b.iter(|| black_box(run_spec_workload(&w, m, &quick())))
        });
    }
    g.finish();
}

/// Table 1 driver: the randomization ablations.
fn bench_randomization(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab01_randomization");
    g.sample_size(10);
    let w = spec_workload("soplex").expect("soplex exists");
    for mode in [
        SecurityMode::NonSecure,
        SecurityMode::L1RandomOnly,
        SecurityMode::L2RandomOnly,
        SecurityMode::BothRandomOnly,
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(mode.name()), &mode, |b, &m| {
            b.iter(|| black_box(run_spec_workload(&w, m, &quick())))
        });
    }
    g.finish();
}

/// Figure 11 driver: one full Spectre-V1 attack + inference round.
fn bench_spectre(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_spectre");
    g.sample_size(10);
    for mode in [SecurityMode::NonSecure, SecurityMode::CleanupSpec] {
        g.bench_with_input(BenchmarkId::from_parameter(mode.name()), &mode, |b, &m| {
            b.iter(|| black_box(run_spectre_v1(m, 1, 3)))
        });
    }
    g.finish();
}

/// Figure 9 driver: a 4-core sharing workload.
fn bench_sharing(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09_sharing");
    g.sample_size(10);
    let w = sharing_workload("radiosity").expect("radiosity exists");
    g.bench_function("radiosity_4core", |b| {
        b.iter(|| {
            let mut builder = SimBuilder::new(SecurityMode::NonSecure).seed(4);
            for p in w.build_all(4, 4) {
                builder = builder.program(p);
            }
            let mut sim = builder.build();
            sim.run_insts(5_000);
            black_box(sim.report())
        })
    });
    g.finish();
}

/// Figures 13-15 / Table 5 driver: the cleanup engine under a mispredict
/// storm (ablation: cleanup cost vs squash-free baseline).
fn bench_cleanup_engine(c: &mut Criterion) {
    use cleanupspec_workloads::micro::{alu_loop, mispredict_storm};
    let mut g = c.benchmark_group("fig13_15_cleanup_engine");
    g.sample_size(10);
    g.bench_function("storm_cleanupspec", |b| {
        b.iter(|| {
            let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
                .program(mispredict_storm(2_000, 3, 5))
                .build();
            sim.run_to_completion();
            black_box(sim.report())
        })
    });
    g.bench_function("storm_nonsecure", |b| {
        b.iter(|| {
            let mut sim = SimBuilder::new(SecurityMode::NonSecure)
                .program(mispredict_storm(2_000, 3, 5))
                .build();
            sim.run_to_completion();
            black_box(sim.report())
        })
    });
    g.bench_function("squash_free_cleanupspec", |b| {
        b.iter(|| {
            let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
                .program(alu_loop(10_000))
                .build();
            sim.run_to_completion();
            black_box(sim.report())
        })
    });
    g.finish();
}

/// Simulator-throughput bench: simulated instructions per wall-second for
/// a representative program (tracks the engine's own performance).
fn bench_sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    let cfg = SpectreConfig::default();
    g.bench_function("spectre_program_run", |b| {
        b.iter(|| {
            let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
                .program(spectre_v1_program(&cfg))
                .build();
            black_box(sim.run_to_completion())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_modes,
    bench_randomization,
    bench_spectre,
    bench_sharing,
    bench_cleanup_engine,
    bench_sim_throughput
);
criterion_main!(benches);
