//! Criterion microbenchmarks of the simulator's hot components: the cache
//! tag array, the CEASER cipher, the branch predictor, and the MSHR file.

use cleanupspec_mem::cache::{CacheConfig, Mesi, SetAssocCache};
use cleanupspec_mem::ceaser::{CeaserCipher, Indexer};
use cleanupspec_mem::mshr::{LoadPath, MshrEntry, MshrFile, MshrState, SefeRecord};
use cleanupspec_mem::replacement::ReplacementKind;
use cleanupspec_mem::types::{CoreId, EpochId, LineAddr, LoadId};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn l1_cache() -> SetAssocCache {
    SetAssocCache::new(
        "bench-l1",
        CacheConfig {
            capacity_bytes: 64 * 1024,
            ways: 8,
            replacement: ReplacementKind::Random,
            indexer: Indexer::Modulo,
            skews: 1,
            seed: 7,
        },
    )
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.bench_function("probe_hit", |b| {
        let mut cache = l1_cache();
        cache.install(LineAddr::new(42), Mesi::Exclusive, false, None);
        b.iter(|| black_box(cache.probe(black_box(LineAddr::new(42))).is_some()));
    });
    g.bench_function("probe_miss", |b| {
        let cache = l1_cache();
        b.iter(|| black_box(cache.probe(black_box(LineAddr::new(99))).is_none()));
    });
    g.bench_function("install_evict_cycle", |b| {
        let mut cache = l1_cache();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.install(LineAddr::new(i * 128), Mesi::Shared, false, None))
        });
    });
    g.finish();
}

fn bench_ceaser(c: &mut Criterion) {
    let mut g = c.benchmark_group("ceaser");
    let cipher = CeaserCipher::new(0xC0FFEE);
    g.bench_function("encrypt", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cipher.encrypt(black_box(LineAddr::new(i))))
        });
    });
    let idx = Indexer::ceaser(1);
    g.bench_function("set_index", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(idx.set_index(black_box(LineAddr::new(i)), 2048))
        });
    });
    g.finish();
}

fn bench_bpred(c: &mut Criterion) {
    use cleanupspec_core::bpred::TournamentPredictor;
    let mut g = c.benchmark_group("bpred");
    g.bench_function("predict_update", |b| {
        let mut p = TournamentPredictor::default();
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            let pc = i % 512;
            let taken = i % 3 == 0;
            let pred = p.predict(pc);
            p.update(pc, taken, pred != taken);
            black_box(pred)
        });
    });
    g.finish();
}

fn bench_mshr(c: &mut Criterion) {
    let mut g = c.benchmark_group("mshr");
    g.bench_function("alloc_free", |b| {
        let mut m = MshrFile::new(CoreId(0), 64);
        b.iter(|| {
            let t = m
                .alloc(MshrEntry {
                    line: LineAddr::new(1),
                    core: CoreId(0),
                    epoch: EpochId::zero(),
                    load: LoadId(0),
                    is_spec: true,
                    complete_at: 100,
                    path: LoadPath::Mem,
                    wants_l2_fill: true,
                    state: MshrState::Pending,
                    record: SefeRecord::default(),
                    orphan: false,
                    gen: 0,
                })
                .expect("space");
            m.free(t);
        });
    });
    g.finish();
}

criterion_group!(benches, bench_cache, bench_ceaser, bench_bpred, bench_mshr);
criterion_main!(benches);
