//! Microbenchmarks of the simulator's hot components: the cache tag array,
//! the CEASER cipher, the branch predictor, and the MSHR file. Run with
//! `cargo bench --bench components [filter]`.

use cleanupspec_bench::microbench::Bencher;
use cleanupspec_core::bpred::TournamentPredictor;
use cleanupspec_mem::cache::{CacheConfig, Mesi, SetAssocCache};
use cleanupspec_mem::ceaser::{CeaserCipher, Indexer};
use cleanupspec_mem::mshr::{LoadPath, MshrEntry, MshrFile, MshrState, SefeRecord};
use cleanupspec_mem::replacement::ReplacementKind;
use cleanupspec_mem::types::{CoreId, EpochId, LineAddr, LoadId};
use std::hint::black_box;

fn l1_cache() -> SetAssocCache {
    SetAssocCache::new(
        "bench-l1",
        CacheConfig {
            capacity_bytes: 64 * 1024,
            ways: 8,
            replacement: ReplacementKind::Random,
            indexer: Indexer::Modulo,
            skews: 1,
            seed: 7,
        },
    )
}

fn bench_cache(b: &Bencher) {
    {
        let mut cache = l1_cache();
        cache.install(LineAddr::new(42), Mesi::Exclusive, false, None);
        b.run("cache", "probe_hit", || {
            cache.probe(black_box(LineAddr::new(42))).is_some()
        });
    }
    {
        let cache = l1_cache();
        b.run("cache", "probe_miss", || {
            cache.probe(black_box(LineAddr::new(99))).is_none()
        });
    }
    {
        let mut cache = l1_cache();
        let mut i = 0u64;
        b.run("cache", "install_evict_cycle", || {
            i += 1;
            cache.install(LineAddr::new(i * 128), Mesi::Shared, false, None)
        });
    }
}

fn bench_ceaser(b: &Bencher) {
    let cipher = CeaserCipher::new(0xC0FFEE);
    let mut i = 0u64;
    b.run("ceaser", "encrypt", || {
        i += 1;
        cipher.encrypt(black_box(LineAddr::new(i)))
    });
    let idx = Indexer::ceaser(1);
    let mut j = 0u64;
    b.run("ceaser", "set_index", || {
        j += 1;
        idx.set_index(black_box(LineAddr::new(j)), 2048)
    });
}

fn bench_bpred(b: &Bencher) {
    let mut p = TournamentPredictor::default();
    let mut i = 0usize;
    b.run("bpred", "predict_update", || {
        i += 1;
        let pc = i % 512;
        let taken = i.is_multiple_of(3);
        let pred = p.predict(pc);
        p.update(pc, taken, pred != taken);
        pred
    });
}

fn bench_mshr(b: &Bencher) {
    let mut m = MshrFile::new(CoreId(0), 64);
    b.run("mshr", "alloc_free", || {
        let t = m
            .alloc(MshrEntry {
                line: LineAddr::new(1),
                core: CoreId(0),
                epoch: EpochId::zero(),
                load: LoadId(0),
                is_spec: true,
                complete_at: 100,
                path: LoadPath::Mem,
                wants_l2_fill: true,
                state: MshrState::Pending,
                record: SefeRecord::default(),
                orphan: false,
                episode: 0,
                gen: 0,
            })
            .expect("space");
        m.free(t);
    });
}

fn main() {
    let b = Bencher::new();
    bench_cache(&b);
    bench_ceaser(&b);
    bench_bpred(&b);
    bench_mshr(&b);
}
