; Meltdown-style exception attack: read a protected word, transmit it
; through the cache before the deferred permission check faults.
;
; Run:  cargo run --release -p cleanupspec-asm --bin casm -- programs/meltdown.s --mode cleanupspec
.word 0xF00000 = 42                 ; kernel secret
.protect 0xF00000 0xF00040
.fault_handler recover

    movi r1, 0xF00000
    ld r2, [r1]                     ; illegal; faults at commit
    mul r3, r2, 512
    add r3, r3, 0x200000
    ld r4, [r3]                     ; transient transmission
    halt
recover:
    movi r6, 0x600D
    halt
