; Spectre Variant-1 in micro-ISA assembly (see crates/workloads for the
; programmatic builder used by the Figure 11 harness).
;
; Run:  cargo run --release -p cleanupspec-asm --bin casm -- programs/spectre_v1.s --mode cleanupspec
;
; r1 = round counter, r10 = &bound, r2 = &xs[i]
.word 0x20000 = 16                  ; array1_bound
.word 0x10008 = 1                   ; array1[1..6] = 1..5 (benign)
.word 0x10010 = 2
.word 0x10018 = 3
.word 0x10020 = 4
.word 0x10028 = 5
.word 0x90000 = 50                  ; the secret, at array1 + malicious_x*8
.word 0x30000 = 1 2 3 4 5 1 2 3 4 5 1 2 3 4 5 1 2 3 4 5
.word 0x300a0 = 1 2 3 4 5 1 2 3 4 5 1 2 3 4 5 1 2 3 4 5
.word 0x30140 = 65536               ; xs[40] = malicious_x
.reg r1 = 41
.reg r2 = 0x30000
.reg r10 = 0x20000

; warm the secret's line like the victim would
    movi r12, 0x90000
    ld r9, [r12]
    fence
round:
    clflush [r10]                   ; flush the bound: slow bounds check
    fence
    ld r3, [r2]                     ; x = xs[i]
    ld r4, [r10]                    ; bound (DRAM miss)
    mul r4, r4, 1
    mul r4, r4, 1
    mul r4, r4, 1
    sub r5, r3, r4
    blt r5, access                  ; if x < bound: in-bounds
    jmp next
access:
    shl r6, r3, 3
    add r6, r6, 0x10000             ; &array1[x]
    ld r7, [r6]                     ; secret (transient on the last round)
    mul r8, r7, 512
    add r8, r8, 0x100000            ; &array2[secret*512]
    ld r9, [r8]                     ; transmit
next:
    add r2, r2, 8
    sub r1, r1, 1
    bne r1, round
    halt
