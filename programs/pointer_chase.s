; A 16-node pointer chase: every load's address is the previous load's
; value — a pure memory-latency microbenchmark.
;
; Run:  cargo run --release -p cleanupspec-asm --bin casm -- programs/pointer_chase.s
.word 0x40000 = 0x41000
.word 0x41000 = 0x42000
.word 0x42000 = 0x43000
.word 0x43000 = 0x40000
.reg r1 = 0x40000
.reg r2 = 64

chase:
    ld r1, [r1]
    sub r2, r2, 1
    bne r2, chase
    halt
